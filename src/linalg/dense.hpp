#pragma once
// Dense reference solvers (test oracles for CG, and the small-system path
// of the Ax=b tool): Cholesky for SPD, Gaussian elimination with partial
// pivoting for general systems.

#include <optional>
#include <vector>

namespace l2l::linalg {

/// Row-major dense matrix.
class DenseMatrix {
 public:
  DenseMatrix(int rows, int cols)
      : rows_(rows), cols_(cols),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols), 0.0) {}

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  double& at(int i, int j) {
    return data_[static_cast<std::size_t>(i) * static_cast<std::size_t>(cols_) +
                 static_cast<std::size_t>(j)];
  }
  double at(int i, int j) const {
    return data_[static_cast<std::size_t>(i) * static_cast<std::size_t>(cols_) +
                 static_cast<std::size_t>(j)];
  }

 private:
  int rows_, cols_;
  std::vector<double> data_;
};

/// Solve A x = b by Gaussian elimination with partial pivoting.
/// nullopt when A is (numerically) singular.
std::optional<std::vector<double>> solve_gauss(DenseMatrix a,
                                               std::vector<double> b);

/// Cholesky solve for SPD A. nullopt when A is not positive definite.
std::optional<std::vector<double>> solve_cholesky(const DenseMatrix& a,
                                                  const std::vector<double>& b);

}  // namespace l2l::linalg
