#include "linalg/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/parallel.hpp"

namespace l2l::linalg {

void SparseMatrix::add(int i, int j, double v) {
  if (compressed_)
    throw std::logic_error("SparseMatrix::add after compress()");
  if (i < 0 || i >= n_ || j < 0 || j >= n_)
    throw std::invalid_argument("SparseMatrix::add: index out of range");
  ti_.push_back(i);
  tj_.push_back(j);
  tv_.push_back(v);
}

void SparseMatrix::compress() {
  if (compressed_) throw std::logic_error("SparseMatrix: already compressed");
  compressed_ = true;
  // Sort triplets by (row, col) and sum duplicates.
  std::vector<std::size_t> order(ti_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return ti_[a] != ti_[b] ? ti_[a] < ti_[b] : tj_[a] < tj_[b];
  });
  row_ptr_.assign(static_cast<std::size_t>(n_) + 1, 0);
  col_.reserve(ti_.size());
  values_.reserve(ti_.size());
  int last_row = 0;
  int last_col = -1;
  for (const std::size_t k : order) {
    if (!col_.empty() && ti_[k] == last_row && tj_[k] == last_col) {
      values_.back() += tv_[k];
      continue;
    }
    while (last_row < ti_[k]) {
      row_ptr_[static_cast<std::size_t>(++last_row)] =
          static_cast<int>(col_.size());
      last_col = -1;
    }
    col_.push_back(tj_[k]);
    values_.push_back(tv_[k]);
    last_col = tj_[k];
  }
  while (last_row < n_)
    row_ptr_[static_cast<std::size_t>(++last_row)] =
        static_cast<int>(col_.size());
  ti_.clear();
  tj_.clear();
  tv_.clear();
}

void SparseMatrix::multiply(const std::vector<double>& x,
                            std::vector<double>& y) const {
  if (!compressed_) throw std::logic_error("SparseMatrix: not compressed");
  if (static_cast<int>(x.size()) != n_)
    throw std::invalid_argument("SparseMatrix::multiply: size mismatch");
  y.assign(static_cast<std::size_t>(n_), 0.0);
  // Row-chunked SpMV: rows are independent, each chunk writes a disjoint
  // span of y, and per-row arithmetic is unchanged, so the product is
  // exact-identical at any thread count.
  constexpr std::int64_t kRowGrain = 256;
  util::parallel_for_chunks(0, n_, kRowGrain, [&](std::int64_t r0,
                                                  std::int64_t r1) {
    for (std::int64_t i = r0; i < r1; ++i) {
      double acc = 0.0;
      for (int k = row_ptr_[static_cast<std::size_t>(i)];
           k < row_ptr_[static_cast<std::size_t>(i) + 1]; ++k)
        acc += values_[static_cast<std::size_t>(k)] *
               x[static_cast<std::size_t>(col_[static_cast<std::size_t>(k)])];
      y[static_cast<std::size_t>(i)] = acc;
    }
  });
}

std::vector<double> SparseMatrix::diagonal() const {
  if (!compressed_) throw std::logic_error("SparseMatrix: not compressed");
  std::vector<double> d(static_cast<std::size_t>(n_), 0.0);
  for (int i = 0; i < n_; ++i)
    for (int k = row_ptr_[static_cast<std::size_t>(i)];
         k < row_ptr_[static_cast<std::size_t>(i) + 1]; ++k)
      if (col_[static_cast<std::size_t>(k)] == i)
        d[static_cast<std::size_t>(i)] = values_[static_cast<std::size_t>(k)];
  return d;
}

bool SparseMatrix::is_symmetric(double tol) const {
  if (!compressed_) throw std::logic_error("SparseMatrix: not compressed");
  // CSR iteration is already (row, col)-sorted; sort the transposed
  // triplets the same way and compare the two streams with two pointers.
  // An entry missing from one side compares against zero.
  struct Entry {
    int i, j;
    double v;
  };
  std::vector<Entry> fwd, rev;
  fwd.reserve(values_.size());
  rev.reserve(values_.size());
  for (int i = 0; i < n_; ++i)
    for (int k = row_ptr_[static_cast<std::size_t>(i)];
         k < row_ptr_[static_cast<std::size_t>(i) + 1]; ++k) {
      const int j = col_[static_cast<std::size_t>(k)];
      const double v = values_[static_cast<std::size_t>(k)];
      fwd.push_back({i, j, v});
      rev.push_back({j, i, v});
    }
  std::sort(rev.begin(), rev.end(), [](const Entry& a, const Entry& b) {
    return a.i != b.i ? a.i < b.i : a.j < b.j;
  });
  std::size_t a = 0, b = 0;
  while (a < fwd.size() || b < rev.size()) {
    const bool take_a =
        b == rev.size() ||
        (a < fwd.size() && (fwd[a].i != rev[b].i ? fwd[a].i < rev[b].i
                                                 : fwd[a].j < rev[b].j));
    const bool take_b =
        a == fwd.size() ||
        (b < rev.size() && (rev[b].i != fwd[a].i ? rev[b].i < fwd[a].i
                                                 : rev[b].j < fwd[a].j));
    if (take_a) {
      if (std::abs(fwd[a].v) > tol) return false;  // A[i][j] vs missing A[j][i]
      ++a;
    } else if (take_b) {
      if (std::abs(rev[b].v) > tol) return false;
      ++b;
    } else {
      if (std::abs(fwd[a].v - rev[b].v) > tol) return false;
      ++a;
      ++b;
    }
  }
  return true;
}

}  // namespace l2l::linalg
