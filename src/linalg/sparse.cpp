#include "linalg/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <stdexcept>

namespace l2l::linalg {

void SparseMatrix::add(int i, int j, double v) {
  if (compressed_)
    throw std::logic_error("SparseMatrix::add after compress()");
  if (i < 0 || i >= n_ || j < 0 || j >= n_)
    throw std::invalid_argument("SparseMatrix::add: index out of range");
  ti_.push_back(i);
  tj_.push_back(j);
  tv_.push_back(v);
}

void SparseMatrix::compress() {
  if (compressed_) throw std::logic_error("SparseMatrix: already compressed");
  compressed_ = true;
  // Sort triplets by (row, col) and sum duplicates.
  std::vector<std::size_t> order(ti_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return ti_[a] != ti_[b] ? ti_[a] < ti_[b] : tj_[a] < tj_[b];
  });
  row_ptr_.assign(static_cast<std::size_t>(n_) + 1, 0);
  int last_row = 0;
  int last_col = -1;
  for (const std::size_t k : order) {
    if (!col_.empty() && ti_[k] == last_row && tj_[k] == last_col) {
      values_.back() += tv_[k];
      continue;
    }
    while (last_row < ti_[k]) {
      row_ptr_[static_cast<std::size_t>(++last_row)] =
          static_cast<int>(col_.size());
      last_col = -1;
    }
    col_.push_back(tj_[k]);
    values_.push_back(tv_[k]);
    last_col = tj_[k];
  }
  while (last_row < n_)
    row_ptr_[static_cast<std::size_t>(++last_row)] =
        static_cast<int>(col_.size());
  ti_.clear();
  tj_.clear();
  tv_.clear();
}

void SparseMatrix::multiply(const std::vector<double>& x,
                            std::vector<double>& y) const {
  if (!compressed_) throw std::logic_error("SparseMatrix: not compressed");
  if (static_cast<int>(x.size()) != n_)
    throw std::invalid_argument("SparseMatrix::multiply: size mismatch");
  y.assign(static_cast<std::size_t>(n_), 0.0);
  for (int i = 0; i < n_; ++i) {
    double acc = 0.0;
    for (int k = row_ptr_[static_cast<std::size_t>(i)];
         k < row_ptr_[static_cast<std::size_t>(i) + 1]; ++k)
      acc += values_[static_cast<std::size_t>(k)] *
             x[static_cast<std::size_t>(col_[static_cast<std::size_t>(k)])];
    y[static_cast<std::size_t>(i)] = acc;
  }
}

std::vector<double> SparseMatrix::diagonal() const {
  if (!compressed_) throw std::logic_error("SparseMatrix: not compressed");
  std::vector<double> d(static_cast<std::size_t>(n_), 0.0);
  for (int i = 0; i < n_; ++i)
    for (int k = row_ptr_[static_cast<std::size_t>(i)];
         k < row_ptr_[static_cast<std::size_t>(i) + 1]; ++k)
      if (col_[static_cast<std::size_t>(k)] == i)
        d[static_cast<std::size_t>(i)] = values_[static_cast<std::size_t>(k)];
  return d;
}

bool SparseMatrix::is_symmetric(double tol) const {
  if (!compressed_) throw std::logic_error("SparseMatrix: not compressed");
  std::map<std::pair<int, int>, double> entries;
  for (int i = 0; i < n_; ++i)
    for (int k = row_ptr_[static_cast<std::size_t>(i)];
         k < row_ptr_[static_cast<std::size_t>(i) + 1]; ++k)
      entries[{i, col_[static_cast<std::size_t>(k)]}] =
          values_[static_cast<std::size_t>(k)];
  for (const auto& [ij, v] : entries) {
    const auto it = entries.find({ij.second, ij.first});
    const double w = it == entries.end() ? 0.0 : it->second;
    if (std::abs(v - w) > tol) return false;
  }
  return true;
}

}  // namespace l2l::linalg
