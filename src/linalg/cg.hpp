#pragma once
// Jacobi-preconditioned conjugate gradient for SPD systems -- the solver
// behind the quadratic placer and the MOOC's Ax=b tool portal.

#include <vector>

#include "linalg/sparse.hpp"
#include "util/budget.hpp"

namespace l2l::linalg {

struct CgOptions {
  int max_iterations = 1000;
  double tolerance = 1e-10;  ///< relative residual ||r|| / ||b||
  bool jacobi_preconditioner = true;
  /// Optional resource guard (not owned), polled once per CG iteration.
  /// CG never consumes steps itself -- callers charge steps at their own
  /// granularity (the placer charges per region solve) -- so a tripped
  /// guard simply stops iterating and returns the best iterate so far
  /// with converged = false.
  const util::Budget* budget = nullptr;
};

struct CgResult {
  std::vector<double> x;
  int iterations = 0;
  double residual = 0.0;  ///< final relative residual
  bool converged = false;
};

/// Solve A x = b for SPD A.
CgResult conjugate_gradient(const SparseMatrix& a, const std::vector<double>& b,
                            const CgOptions& options = {});

}  // namespace l2l::linalg
