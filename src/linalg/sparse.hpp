#pragma once
// Sparse symmetric-positive-definite linear algebra: the "Ax=b" custom
// solver the MOOC deployed so students could run quadratic-placement
// homeworks (Fig. 4), and the numerical core of the Week-6 placer.

#include <cstddef>
#include <vector>

namespace l2l::linalg {

/// Coordinate-format builder that compresses to CSR. Duplicate entries
/// are summed (convenient for assembling clique/star net models).
class SparseMatrix {
 public:
  explicit SparseMatrix(int n = 0) : n_(n) {}

  int size() const { return n_; }

  /// Accumulate A[i][j] += v.
  void add(int i, int j, double v);

  /// Finalize into CSR. Must be called once after all add()s.
  void compress();
  bool compressed() const { return compressed_; }

  /// y = A x. Requires compress().
  void multiply(const std::vector<double>& x, std::vector<double>& y) const;

  /// Diagonal entries (for Jacobi preconditioning). Requires compress().
  std::vector<double> diagonal() const;

  /// Number of stored nonzeros. Requires compress().
  std::size_t nnz() const { return values_.size(); }

  /// Symmetry check within tolerance (test helper; O(nnz log nnz)).
  bool is_symmetric(double tol = 1e-12) const;

 private:
  int n_ = 0;
  bool compressed_ = false;
  // Triplets before compression.
  std::vector<int> ti_, tj_;
  std::vector<double> tv_;
  // CSR after compression.
  std::vector<int> row_ptr_, col_;
  std::vector<double> values_;
};

}  // namespace l2l::linalg
