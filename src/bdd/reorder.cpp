#include "bdd/reorder.hpp"

#include <algorithm>
#include <map>
#include <numeric>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace l2l::bdd {
namespace {

/// Memo key for the transfer recursion: (depth in new order, source edge).
struct TransferKey {
  std::size_t depth;
  std::uint32_t bits;
  bool operator<(const TransferKey& o) const {
    return depth != o.depth ? depth < o.depth : bits < o.bits;
  }
};

}  // namespace

// Friend of Manager and Bdd; hosts the implementations that need access to
// raw edges and the private Bdd constructor.
class Reorderer {
 public:
  static ReorderResult with_order(const std::vector<Bdd>& roots,
                                  const std::vector<int>& order);
};

ReorderResult Reorderer::with_order(const std::vector<Bdd>& roots,
                                    const std::vector<int>& order) {
  if (roots.empty()) throw std::invalid_argument("reorder: no roots");
  Manager* src = roots.front().manager();
  for (const auto& r : roots)
    if (r.manager() != src)
      throw std::invalid_argument("reorder: roots from different managers");
  const int n = src->num_vars();
  {
    std::vector<int> check = order;
    std::sort(check.begin(), check.end());
    std::vector<int> iota(static_cast<std::size_t>(n));
    std::iota(iota.begin(), iota.end(), 0);
    if (check != iota)
      throw std::invalid_argument("reorder: order is not a permutation");
  }

  ReorderResult out;
  out.order = order;
  out.size_before = dag_size(roots);
  out.manager = std::make_unique<Manager>(n);
  Manager& dst = *out.manager;

  std::map<TransferKey, Edge> memo;
  // Build the new-order BDD by Shannon-expanding the source function on
  // the new order's variables, top-down.
  auto build = [&](auto&& self, std::size_t depth, Edge f) -> Edge {
    if (src->is_terminal(f))
      return f.complemented() ? dst.zero_edge() : dst.one_edge();
    if (depth >= order.size())
      throw std::logic_error("reorder: non-constant function below last var");
    const TransferKey key{depth, f.bits};
    if (auto it = memo.find(key); it != memo.end()) return it->second;
    const auto v = static_cast<std::uint32_t>(order[depth]);
    const Edge f0 = src->restrict_var(f, v, false);
    const Edge f1 = src->restrict_var(f, v, true);
    Edge r;
    if (f0 == f1) {
      r = self(self, depth + 1, f0);
    } else {
      const Edge lo = self(self, depth + 1, f0);
      const Edge hi = self(self, depth + 1, f1);
      r = dst.make_node(static_cast<std::uint32_t>(depth), lo, hi);
    }
    memo.emplace(key, r);
    return r;
  };

  out.roots.reserve(roots.size());
  for (const auto& r : roots)
    out.roots.push_back(Bdd(&dst, build(build, 0, r.e_)));
  out.size_after = dag_size(out.roots);
  return out;
}

ReorderResult reorder_with_order(const std::vector<Bdd>& roots,
                                 const std::vector<int>& order) {
  obs::count("bdd.reorder.rebuilds");
  return Reorderer::with_order(roots, order);
}

ReorderResult sift(const std::vector<Bdd>& roots, int max_passes) {
  if (roots.empty()) throw std::invalid_argument("sift: no roots");
  obs::ScopedSpan span("bdd.sift");
  obs::count("bdd.reorder.sift_calls");
  const int n = roots.front().manager()->num_vars();
  std::vector<int> best_order(static_cast<std::size_t>(n));
  std::iota(best_order.begin(), best_order.end(), 0);
  std::size_t best_size = dag_size(roots);
  const std::size_t original_size = best_size;

  for (int pass = 0; pass < max_passes; ++pass) {
    obs::count("bdd.reorder.passes");
    bool improved = false;
    for (int v = 0; v < n; ++v) {
      // Try variable v at every position of the current best order.
      const auto base = best_order;
      auto pos_of = std::find(base.begin(), base.end(), v) - base.begin();
      for (int p = 0; p < n; ++p) {
        if (p == pos_of) continue;
        auto candidate = base;
        candidate.erase(candidate.begin() + pos_of);
        candidate.insert(candidate.begin() + p, v);
        const auto res = reorder_with_order(roots, candidate);
        if (res.size_after < best_size) {
          best_size = res.size_after;
          best_order = candidate;
          improved = true;
        }
      }
    }
    if (!improved) break;
  }

  ReorderResult out = reorder_with_order(roots, best_order);
  out.size_before = original_size;
  return out;
}

}  // namespace l2l::bdd
