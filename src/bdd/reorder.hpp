#pragma once
// Variable-order optimization ("Var order" in the Week-2 concept map).
//
// BDD size is famously order-sensitive (the course's 2-bit comparator /
// multiplexer examples blow up or collapse by orders of magnitude). We
// provide order transfer -- rebuilding a set of roots in a fresh manager
// under an arbitrary order -- and a greedy sifting-style search over
// positions built on top of it. Transfer-based sifting is O(vars^2)
// rebuilds, which is fine at the course's scale and keeps the canonical
// in-place level-swap machinery out of the package.

#include <memory>
#include <vector>

#include "bdd/bdd.hpp"

namespace l2l::bdd {

struct ReorderResult {
  std::unique_ptr<Manager> manager;  ///< fresh manager holding the rebuilt roots
  std::vector<Bdd> roots;            ///< same functions, variables renumbered
  /// order[new_index] = original variable index: variable `order[k]` of the
  /// source manager appears as variable `k` of the new manager.
  std::vector<int> order;
  std::size_t size_before = 0;  ///< shared DAG nodes under the old order
  std::size_t size_after = 0;   ///< shared DAG nodes under the new order
};

/// Rebuild `roots` (all from one manager) in a fresh manager under the
/// given order (a permutation of 0..num_vars-1).
ReorderResult reorder_with_order(const std::vector<Bdd>& roots,
                                 const std::vector<int>& order);

/// Greedy sifting: repeatedly move each variable (largest DAG contribution
/// first) to its best position, keeping improvements. `max_passes` bounds
/// the outer loop.
ReorderResult sift(const std::vector<Bdd>& roots, int max_passes = 2);

}  // namespace l2l::bdd
