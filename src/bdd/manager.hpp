#pragma once
// Reduced Ordered Binary Decision Diagrams (ROBDDs) with complement edges.
//
// Week 2 of the course ("BDD basic defns, ROBDD; Building; Var order;
// Multi-root; Garbage-collect; Negation arc; Ops, Restrict & ITE; ITE
// implementation, hash tables" -- exactly the Fig. 1 concept list). The
// design follows Brace/Rudell/Bryant, "Efficient Implementation of a BDD
// Package", DAC 1990 [7]:
//
//  * a single multi-rooted DAG shared by all functions (the Manager);
//  * complement ("negation") arcs: an edge is a node index plus a
//    complement bit, making NOT an O(1) pointer flip;
//  * a unique table mapping (var, lo, hi) -> node for canonicity;
//  * all binary operations implemented through ITE with a computed table;
//  * reference-counted external handles (class Bdd) + mark-and-sweep
//    garbage collection.
//
// Canonical form invariants:
//  * node variables strictly increase from root to terminal (var is a
//    *level*; level 0 is topmost);
//  * the hi (then) edge is never complemented -- if it would be, both
//    children and the resulting edge are complemented instead;
//  * lo != hi (no redundant tests).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/budget.hpp"
#include "util/flat_map.hpp"

namespace l2l::bdd {

class Bdd;

/// Cheap local tallies kept by the manager's hot paths (one integer
/// increment each -- no registry calls in make_node/ite). Deltas are
/// flushed to the obs registry by flush_metrics() and the destructor.
struct ManagerStats {
  std::int64_t nodes_created = 0;   ///< fresh unique-table insertions
  std::int64_t unique_hits = 0;     ///< make_node served from unique table
  std::int64_t cache_lookups = 0;   ///< computed-table probes in ite()
  std::int64_t cache_hits = 0;      ///< computed-table hits in ite()
  std::int64_t gc_runs = 0;         ///< garbage collections
};

/// An edge into the shared DAG: node index with a complement bit in bit 0.
struct Edge {
  std::uint32_t bits = 0;

  static Edge make(std::uint32_t node, bool complemented) {
    return Edge{(node << 1) | static_cast<std::uint32_t>(complemented)};
  }
  std::uint32_t node() const { return bits >> 1; }
  bool complemented() const { return bits & 1; }
  Edge operator!() const { return Edge{bits ^ 1}; }
  bool operator==(const Edge&) const = default;
};

class Manager {
 public:
  /// `num_vars` may grow later via new_var().
  explicit Manager(int num_vars = 0);
  ~Manager();

  Manager(const Manager&) = delete;
  Manager& operator=(const Manager&) = delete;

  int num_vars() const { return num_vars_; }

  /// Append a fresh variable at the bottom of the order; returns its index.
  int new_var();

  Bdd one();
  Bdd zero();
  Bdd var(int i);   ///< the function x_i
  Bdd nvar(int i);  ///< the function x_i'

  /// Live (reachable-from-some-handle) node count, excluding the terminal.
  std::size_t num_live_nodes() const;

  /// Total allocated node slots (monotone until garbage_collect()).
  std::size_t num_allocated_nodes() const { return nodes_.size() - free_.size(); }

  /// Reclaim dead nodes and clear the computed table. Called automatically
  /// when the node count crosses an internal threshold; callable manually.
  void garbage_collect();

  /// Number of garbage collections performed (for tests/stats).
  int gc_count() const { return gc_count_; }

  /// Install a resource guard (not owned; clear with nullptr). Each
  /// freshly allocated node consumes one budget step; the deadline and
  /// cancellation token are polled on the same path. When the guard
  /// trips, the in-flight operation unwinds with util::BudgetExceededError
  /// -- already-interned nodes stay valid and unreferenced intermediates
  /// are reclaimed by the next garbage_collect(), so the manager remains
  /// fully usable afterwards.
  void set_budget(const util::Budget* budget) { budget_ = budget; }
  const util::Budget* budget() const { return budget_; }

  /// Lifetime tallies of this manager's hot paths (monotone).
  const ManagerStats& stats() const { return stats_; }

  /// Push the delta since the last flush into the obs registry
  /// (bdd.nodes_created, bdd.cache_hits, ...). Also called by the
  /// destructor, so short-lived managers report without ceremony.
  void flush_metrics();

 private:
  friend class Bdd;
  friend class Reorderer;
  friend std::size_t dag_size(const std::vector<Bdd>& roots);

  struct Node {
    std::uint32_t var = 0;  // level
    Edge lo, hi;
    std::uint32_t ref = 0;  // external handle references only
  };

  // Flat-table keys (see util/flat_map.hpp). The all-zero triples serve
  // as the tables' empty-slot sentinels: a unique key with lo == hi is
  // never stored (make_node collapses it), and a computed key's first
  // component is a normalized ITE argument -- uncomplemented and
  // non-terminal, so its edge bits are always >= 2.
  struct UniqueKey {
    std::uint32_t var;
    std::uint32_t lo, hi;
    bool operator==(const UniqueKey&) const = default;
  };
  struct UniqueKeyHash {
    std::uint64_t operator()(const UniqueKey& k) const {
      std::uint64_t h = k.var;
      h = h * 0x9e3779b97f4a7c15ull + k.lo;
      h = h * 0x9e3779b97f4a7c15ull + k.hi;
      return h ^ (h >> 32);
    }
  };
  struct IteKey {
    std::uint32_t f, g, h;
    bool operator==(const IteKey&) const = default;
  };
  struct IteKeyHash {
    std::uint64_t operator()(const IteKey& k) const {
      std::uint64_t h = k.f;
      h = h * 0x9e3779b97f4a7c15ull + k.g;
      h = h * 0x9e3779b97f4a7c15ull + k.h;
      return h ^ (h >> 32);
    }
  };

  static constexpr std::uint32_t kTerminal = 0;  // the constant-1 node
  static constexpr std::uint32_t kLevelTerminal = 0xffffffffu;

  Edge one_edge() const { return Edge::make(kTerminal, false); }
  Edge zero_edge() const { return Edge::make(kTerminal, true); }
  bool is_terminal(Edge e) const { return e.node() == kTerminal; }

  std::uint32_t level_of(Edge e) const {
    return e.node() == kTerminal ? kLevelTerminal : nodes_[e.node()].var;
  }

  /// Find-or-create the canonical node (var, lo, hi).
  Edge make_node(std::uint32_t var, Edge lo, Edge hi);

  /// Cofactor of edge e with respect to the *top* variable `var`
  /// (only valid when level_of(e) >= var's level).
  Edge top_cofactor(Edge e, std::uint32_t var, bool phase) const;

  Edge ite(Edge f, Edge g, Edge h);
  Edge apply_and(Edge f, Edge g) { return ite(f, g, zero_edge()); }
  Edge apply_or(Edge f, Edge g) { return ite(f, one_edge(), g); }
  Edge apply_xor(Edge f, Edge g) { return ite(f, !g, g); }

  Edge restrict_var(Edge f, std::uint32_t var, bool phase);
  Edge compose(Edge f, std::uint32_t var, Edge g);
  Edge exists(Edge f, const std::vector<int>& vars);
  Edge forall(Edge f, const std::vector<int>& vars);

  void ref(Edge e);
  void deref(Edge e);
  void maybe_gc();

  std::vector<Node> nodes_;
  std::vector<std::uint32_t> free_;
  util::FlatMap<UniqueKey, std::uint32_t, UniqueKeyHash> unique_{
      UniqueKey{0, 0, 0}};
  util::FlatMap<IteKey, Edge, IteKeyHash> computed_{IteKey{0, 0, 0}};
  int num_vars_ = 0;
  int gc_count_ = 0;
  std::size_t gc_threshold_ = 1 << 16;
  const util::Budget* budget_ = nullptr;
  ManagerStats stats_;
  ManagerStats flushed_;  // values already pushed to the obs registry
};

}  // namespace l2l::bdd
