#include "bdd/bdd.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "util/flat_map.hpp"
#include "util/strings.hpp"

namespace l2l::bdd {

Bdd::Bdd(Manager* mgr, Edge e) : mgr_(mgr), e_(e) { mgr_->ref(e_); }

Bdd::Bdd(const Bdd& o) : mgr_(o.mgr_), e_(o.e_) {
  if (mgr_) mgr_->ref(e_);
}

Bdd::Bdd(Bdd&& o) noexcept : mgr_(o.mgr_), e_(o.e_) { o.mgr_ = nullptr; }

Bdd& Bdd::operator=(const Bdd& o) {
  if (this == &o) return *this;
  if (o.mgr_) o.mgr_->ref(o.e_);
  if (mgr_) mgr_->deref(e_);
  mgr_ = o.mgr_;
  e_ = o.e_;
  return *this;
}

Bdd& Bdd::operator=(Bdd&& o) noexcept {
  if (this == &o) return *this;
  if (mgr_) mgr_->deref(e_);
  mgr_ = o.mgr_;
  e_ = o.e_;
  o.mgr_ = nullptr;
  return *this;
}

Bdd::~Bdd() {
  if (mgr_) mgr_->deref(e_);
}

void Bdd::check_valid() const {
  if (!mgr_) throw std::logic_error("Bdd: operation on null handle");
}

void Bdd::check_same_manager(const Bdd& o) const {
  check_valid();
  o.check_valid();
  if (mgr_ != o.mgr_)
    throw std::logic_error("Bdd: operands belong to different managers");
}

bool Bdd::is_one() const {
  check_valid();
  return e_ == mgr_->one_edge();
}

bool Bdd::is_zero() const {
  check_valid();
  return e_ == mgr_->zero_edge();
}

int Bdd::top_var() const {
  check_valid();
  if (is_constant()) throw std::logic_error("Bdd::top_var: constant function");
  return static_cast<int>(mgr_->level_of(e_));
}

Bdd Bdd::operator!() const {
  check_valid();
  return Bdd(mgr_, !e_);
}

Bdd Bdd::operator&(const Bdd& o) const {
  check_same_manager(o);
  mgr_->maybe_gc();
  return Bdd(mgr_, mgr_->apply_and(e_, o.e_));
}

Bdd Bdd::operator|(const Bdd& o) const {
  check_same_manager(o);
  mgr_->maybe_gc();
  return Bdd(mgr_, mgr_->apply_or(e_, o.e_));
}

Bdd Bdd::operator^(const Bdd& o) const {
  check_same_manager(o);
  mgr_->maybe_gc();
  return Bdd(mgr_, mgr_->apply_xor(e_, o.e_));
}

Bdd Bdd::ite(const Bdd& g, const Bdd& h) const {
  check_same_manager(g);
  check_same_manager(h);
  mgr_->maybe_gc();
  return Bdd(mgr_, mgr_->ite(e_, g.e_, h.e_));
}

Bdd Bdd::cofactor(int var, bool phase) const {
  check_valid();
  mgr_->maybe_gc();
  return Bdd(mgr_,
             mgr_->restrict_var(e_, static_cast<std::uint32_t>(var), phase));
}

Bdd Bdd::compose(int var, const Bdd& g) const {
  check_same_manager(g);
  mgr_->maybe_gc();
  return Bdd(mgr_, mgr_->compose(e_, static_cast<std::uint32_t>(var), g.e_));
}

Bdd Bdd::exists(const std::vector<int>& vars) const {
  check_valid();
  mgr_->maybe_gc();
  return Bdd(mgr_, mgr_->exists(e_, vars));
}

Bdd Bdd::forall(const std::vector<int>& vars) const {
  check_valid();
  mgr_->maybe_gc();
  return Bdd(mgr_, mgr_->forall(e_, vars));
}

Bdd Bdd::boolean_difference(int var) const {
  return cofactor(var, false) ^ cofactor(var, true);
}

bool Bdd::implies(const Bdd& o) const {
  check_same_manager(o);
  return ((*this) & !o).is_zero();
}

std::uint64_t Bdd::sat_count() const {
  check_valid();
  const int n = mgr_->num_vars();
  if (n > 62)
    throw std::logic_error("Bdd::sat_count: too many variables for uint64");
  // count(node) = #sat assignments of the *uncomplemented* function rooted
  // at node, over variables [level(node), n). Complemented edges are
  // handled by 2^k - count.
  util::FlatMap<std::uint32_t, std::uint64_t> memo(0);  // keys: node >= 1
  auto count_edge = [&](auto&& self, Edge e,
                        std::uint32_t from_level) -> std::uint64_t {
    const std::uint32_t lvl = std::min<std::uint32_t>(
        mgr_->level_of(e), static_cast<std::uint32_t>(n));
    std::uint64_t raw;  // count over vars [lvl, n) of the uncomplemented node
    if (mgr_->is_terminal(e)) {
      raw = 1ull << (n - lvl);
    } else {
      if (const std::uint64_t* found = memo.find(e.node())) {
        raw = *found;
      } else {
        const auto& node = mgr_->nodes_[e.node()];
        raw = self(self, node.lo, lvl + 1) + self(self, node.hi, lvl + 1);
        memo.insert(e.node(), raw);
      }
    }
    if (e.complemented()) raw = (1ull << (n - lvl)) - raw;
    return raw << (lvl - from_level);
  };
  return count_edge(count_edge, e_, 0);
}

std::optional<std::vector<signed char>> Bdd::one_sat() const {
  check_valid();
  if (is_zero()) return std::nullopt;
  std::vector<signed char> out(static_cast<std::size_t>(mgr_->num_vars()), -1);
  Edge e = e_;
  while (!mgr_->is_terminal(e)) {
    const auto& node = mgr_->nodes_[e.node()];
    Edge lo = node.lo, hi = node.hi;
    if (e.complemented()) {
      lo = !lo;
      hi = !hi;
    }
    // Prefer the hi branch when it is not constant-0.
    if (!(hi == mgr_->zero_edge())) {
      out[node.var] = 1;
      e = hi;
    } else {
      out[node.var] = 0;
      e = lo;
    }
  }
  return out;
}

bool Bdd::eval(const std::vector<bool>& assignment) const {
  check_valid();
  Edge e = e_;
  bool parity = false;
  while (!mgr_->is_terminal(e)) {
    parity ^= e.complemented();
    const auto& node = mgr_->nodes_[e.node()];
    if (node.var >= assignment.size())
      throw std::invalid_argument("Bdd::eval: assignment too short");
    e = assignment[node.var] ? node.hi : node.lo;
  }
  parity ^= e.complemented();
  return !parity;  // terminal is constant 1; parity flips it
}

std::vector<int> Bdd::support() const {
  check_valid();
  std::set<int> vars;
  util::FlatSet<std::uint32_t> seen(0);  // node indices are >= 1
  std::vector<std::uint32_t> stack;
  if (!mgr_->is_terminal(e_)) stack.push_back(e_.node());
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    if (!seen.insert(n)) continue;
    const auto& node = mgr_->nodes_[n];
    vars.insert(static_cast<int>(node.var));
    if (node.lo.node() != Manager::kTerminal) stack.push_back(node.lo.node());
    if (node.hi.node() != Manager::kTerminal) stack.push_back(node.hi.node());
  }
  return {vars.begin(), vars.end()};
}

std::size_t Bdd::size() const {
  check_valid();
  return dag_size({*this});
}

tt::TruthTable Bdd::to_truth_table() const {
  check_valid();
  const int n = mgr_->num_vars();
  tt::TruthTable f(n);
  std::vector<bool> a(static_cast<std::size_t>(n), false);
  for (std::uint64_t m = 0; m < f.num_minterms(); ++m) {
    for (int v = 0; v < n; ++v) a[static_cast<std::size_t>(v)] = (m >> v) & 1;
    if (eval(a)) f.set(m, true);
  }
  return f;
}

std::string Bdd::to_dot(const std::string& name) const {
  check_valid();
  std::string out = "digraph " + name + " {\n  rankdir=TB;\n";
  out += "  t1 [label=\"1\", shape=box];\n";
  util::FlatSet<std::uint32_t> seen(0);
  std::vector<std::uint32_t> stack;
  auto edge_str = [&](Edge e) {
    return e.node() == Manager::kTerminal
               ? std::string("t1")
               : util::format("n%u", e.node());
  };
  out += util::format("  root [shape=plaintext, label=\"%s\"];\n", name.c_str());
  out += util::format("  root -> %s%s;\n", edge_str(e_).c_str(),
                      e_.complemented() ? " [style=dotted]" : "");
  if (!mgr_->is_terminal(e_)) stack.push_back(e_.node());
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    if (!seen.insert(n)) continue;
    const auto& node = mgr_->nodes_[n];
    out += util::format("  n%u [label=\"x%u\", shape=circle];\n", n, node.var);
    out += util::format("  n%u -> %s [style=%s];\n", n,
                        edge_str(node.hi).c_str(),
                        node.hi.complemented() ? "bold" : "solid");
    out += util::format("  n%u -> %s [style=dashed%s];\n", n,
                        edge_str(node.lo).c_str(),
                        node.lo.complemented() ? ",color=red" : "");
    if (node.lo.node() != Manager::kTerminal) stack.push_back(node.lo.node());
    if (node.hi.node() != Manager::kTerminal) stack.push_back(node.hi.node());
  }
  out += "}\n";
  return out;
}

std::size_t dag_size(const std::vector<Bdd>& roots) {
  util::FlatSet<std::uint32_t> seen(0);
  std::vector<std::uint32_t> stack;
  for (const auto& r : roots) {
    r.check_valid();
    if (!r.mgr_->is_terminal(r.e_)) stack.push_back(r.e_.node());
  }
  Manager* mgr = roots.empty() ? nullptr : roots.front().mgr_;
  std::size_t count = 0;
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    if (!seen.insert(n)) continue;
    ++count;
    const auto& node = mgr->nodes_[n];
    if (node.lo.node() != Manager::kTerminal) stack.push_back(node.lo.node());
    if (node.hi.node() != Manager::kTerminal) stack.push_back(node.hi.node());
  }
  return count;
}

}  // namespace l2l::bdd
