#pragma once
// The external, reference-counted handle to a function in a BDD Manager.
//
// Handles are value types: copying increments the root reference count,
// destruction decrements it. Because ROBDDs are canonical, operator== on
// handles is O(1) pointer comparison -- this is the formal-verification
// punchline of Week 2 (two circuits are equivalent iff their BDD edges
// are identical).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bdd/manager.hpp"
#include "tt/truth_table.hpp"

namespace l2l::bdd {

class Bdd {
 public:
  /// Null handle (no manager). Most operations on a null handle throw.
  Bdd() = default;

  Bdd(const Bdd& o);
  Bdd(Bdd&& o) noexcept;
  Bdd& operator=(const Bdd& o);
  Bdd& operator=(Bdd&& o) noexcept;
  ~Bdd();

  bool is_null() const { return mgr_ == nullptr; }
  Manager* manager() const { return mgr_; }

  bool is_one() const;
  bool is_zero() const;
  bool is_constant() const { return is_one() || is_zero(); }

  /// Index of the topmost variable (throws on constants).
  int top_var() const;

  /// O(1) canonical equality.
  bool operator==(const Bdd& o) const { return mgr_ == o.mgr_ && e_ == o.e_; }

  /// O(1) complement via the negation arc.
  Bdd operator!() const;

  Bdd operator&(const Bdd& o) const;
  Bdd operator|(const Bdd& o) const;
  Bdd operator^(const Bdd& o) const;

  /// If-then-else: this ? g : h. The universal BDD operation.
  Bdd ite(const Bdd& g, const Bdd& h) const;

  /// Cofactor (a.k.a. restrict): the function with x_var fixed to phase.
  Bdd cofactor(int var, bool phase) const;

  /// Substitute function g for variable var.
  Bdd compose(int var, const Bdd& g) const;

  Bdd exists(const std::vector<int>& vars) const;
  Bdd forall(const std::vector<int>& vars) const;
  Bdd exists(int var) const { return exists(std::vector<int>{var}); }
  Bdd forall(int var) const { return forall(std::vector<int>{var}); }

  /// Boolean difference df/dx_var.
  Bdd boolean_difference(int var) const;

  /// True when this <= o pointwise (this implies o).
  bool implies(const Bdd& o) const;

  /// Number of satisfying assignments over all manager variables
  /// (requires manager()->num_vars() <= 62).
  std::uint64_t sat_count() const;

  /// One satisfying assignment: per variable -1 = don't care, 0, 1.
  /// nullopt when the function is constant 0.
  std::optional<std::vector<signed char>> one_sat() const;

  /// Evaluate on a complete input assignment (indexed by variable).
  bool eval(const std::vector<bool>& assignment) const;

  /// Variables this function depends on, ascending.
  std::vector<int> support() const;

  /// Number of DAG nodes for this function (excluding the terminal).
  std::size_t size() const;

  /// Expand to a truth table over all manager variables (small arity only).
  tt::TruthTable to_truth_table() const;

  /// Graphviz DOT rendering (solid = then, dashed = else, dotted = negated).
  std::string to_dot(const std::string& name = "f") const;

 private:
  friend class Manager;
  friend class Reorderer;
  friend std::size_t dag_size(const std::vector<Bdd>& roots);
  Bdd(Manager* mgr, Edge e);

  void check_valid() const;
  void check_same_manager(const Bdd& o) const;

  Manager* mgr_ = nullptr;
  Edge e_;
};

/// DAG node count shared across several roots (excluding the terminal).
std::size_t dag_size(const std::vector<Bdd>& roots);

}  // namespace l2l::bdd
