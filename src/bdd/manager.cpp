#include "bdd/manager.hpp"

#include <stdexcept>

#include "bdd/bdd.hpp"
#include "obs/metrics.hpp"

namespace l2l::bdd {

Manager::Manager(int num_vars) : num_vars_(num_vars) {
  if (num_vars < 0) throw std::invalid_argument("Manager: negative num_vars");
  // Slot 0 is the constant-1 terminal.
  nodes_.push_back(Node{kLevelTerminal, Edge{}, Edge{}, 1});
}

Manager::~Manager() { flush_metrics(); }

void Manager::flush_metrics() {
  if (!obs::enabled()) {
    flushed_ = stats_;  // keep the baseline current so re-enabling is sane
    return;
  }
  obs::count("bdd.nodes_created", stats_.nodes_created - flushed_.nodes_created);
  obs::count("bdd.unique_hits", stats_.unique_hits - flushed_.unique_hits);
  obs::count("bdd.cache_lookups", stats_.cache_lookups - flushed_.cache_lookups);
  obs::count("bdd.cache_hits", stats_.cache_hits - flushed_.cache_hits);
  obs::count("bdd.gc_runs", stats_.gc_runs - flushed_.gc_runs);
  flushed_ = stats_;
}

int Manager::new_var() { return num_vars_++; }

Bdd Manager::one() { return Bdd(this, one_edge()); }
Bdd Manager::zero() { return Bdd(this, zero_edge()); }

Bdd Manager::var(int i) {
  if (i < 0 || i >= num_vars_)
    throw std::invalid_argument("Manager::var: index out of range");
  return Bdd(this,
             make_node(static_cast<std::uint32_t>(i), zero_edge(), one_edge()));
}

Bdd Manager::nvar(int i) {
  Bdd v = var(i);
  return !v;
}

Edge Manager::make_node(std::uint32_t var, Edge lo, Edge hi) {
  if (lo == hi) return lo;
  // Canonical rule: the then-edge is never complemented.
  if (hi.complemented()) return !make_node(var, !lo, !hi);

  const UniqueKey key{var, lo.bits, hi.bits};
  if (const std::uint32_t* found = unique_.find(key)) {
    ++stats_.unique_hits;
    return Edge::make(*found, false);
  }

  // Resource guard: only *fresh* allocations consume budget, so cache
  // hits (the common case) stay free and the node count is the step unit.
  if (budget_ && (!budget_->consume(1) || budget_->exhausted())) {
    auto status = budget_->status();
    if (status.ok()) status = util::Status::budget("BDD node budget exhausted");
    throw util::BudgetExceededError(std::move(status));
  }

  std::uint32_t idx;
  if (!free_.empty()) {
    idx = free_.back();
    free_.pop_back();
    nodes_[idx] = Node{var, lo, hi, 0};
  } else {
    idx = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back(Node{var, lo, hi, 0});
  }
  unique_.insert(key, idx);
  ++stats_.nodes_created;
  return Edge::make(idx, false);
}

Edge Manager::top_cofactor(Edge e, std::uint32_t var, bool phase) const {
  if (level_of(e) != var) return e;
  const Node& n = nodes_[e.node()];
  const Edge child = phase ? n.hi : n.lo;
  return e.complemented() ? !child : child;
}

Edge Manager::ite(Edge f, Edge g, Edge h) {
  // Terminal cases.
  if (f == one_edge()) return g;
  if (f == zero_edge()) return h;
  if (g == h) return g;
  if (g == one_edge() && h == zero_edge()) return f;
  if (g == zero_edge() && h == one_edge()) return !f;
  if (f == g) g = one_edge();           // ite(f, f, h) = ite(f, 1, h)
  if (f == !g) g = zero_edge();         // ite(f, f', h) = ite(f, 0, h)
  if (f == h) h = zero_edge();          // ite(f, g, f) = ite(f, g, 0)
  if (f == !h) h = one_edge();          // ite(f, g, f') = ite(f, g, 1)
  if (g == h) return g;                 // may have collapsed above

  // Normalize so the computed table sees a canonical triple:
  // first argument uncomplemented, then-branch uncomplemented.
  if (f.complemented()) {
    f = !f;
    std::swap(g, h);
  }
  bool complement_result = false;
  if (g.complemented()) {
    g = !g;
    h = !h;
    complement_result = true;
  }

  const IteKey key{f.bits, g.bits, h.bits};
  ++stats_.cache_lookups;
  if (const Edge* found = computed_.find(key)) {
    ++stats_.cache_hits;
    return complement_result ? !*found : *found;
  }

  const std::uint32_t top =
      std::min(level_of(f), std::min(level_of(g), level_of(h)));
  const Edge r0 = ite(top_cofactor(f, top, false), top_cofactor(g, top, false),
                      top_cofactor(h, top, false));
  const Edge r1 = ite(top_cofactor(f, top, true), top_cofactor(g, top, true),
                      top_cofactor(h, top, true));
  const Edge r = make_node(top, r0, r1);
  computed_.insert(key, r);
  return complement_result ? !r : r;
}

Edge Manager::restrict_var(Edge f, std::uint32_t var, bool phase) {
  if (level_of(f) > var) return f;  // f does not depend on variables above
  if (level_of(f) == var) return top_cofactor(f, var, phase);
  // Recurse; small local memo keyed by edge bits. Memoize on
  // uncomplemented edges (bits >= 2 here, so 0 is a safe empty sentinel);
  // complement distributes over restrict.
  util::FlatMap<std::uint32_t, Edge> memo(0);
  auto rec = [&](auto&& self, Edge e) -> Edge {
    if (level_of(e) > var) return e;
    if (level_of(e) == var) return top_cofactor(e, var, phase);
    const bool c = e.complemented();
    const Edge base = c ? !e : e;
    if (const Edge* found = memo.find(base.bits))
      return c ? !*found : *found;
    const Node& n = nodes_[base.node()];
    const Edge r = make_node(n.var, self(self, n.lo), self(self, n.hi));
    memo.insert(base.bits, r);
    return c ? !r : r;
  };
  return rec(rec, f);
}

Edge Manager::compose(Edge f, std::uint32_t var, Edge g) {
  // f[x_var <- g] = ite(g, f_{x=1}, f_{x=0})
  const Edge f1 = restrict_var(f, var, true);
  const Edge f0 = restrict_var(f, var, false);
  return ite(g, f1, f0);
}

Edge Manager::exists(Edge f, const std::vector<int>& vars) {
  Edge r = f;
  for (int v : vars) {
    const Edge r0 = restrict_var(r, static_cast<std::uint32_t>(v), false);
    const Edge r1 = restrict_var(r, static_cast<std::uint32_t>(v), true);
    r = apply_or(r0, r1);
  }
  return r;
}

Edge Manager::forall(Edge f, const std::vector<int>& vars) {
  Edge r = f;
  for (int v : vars) {
    const Edge r0 = restrict_var(r, static_cast<std::uint32_t>(v), false);
    const Edge r1 = restrict_var(r, static_cast<std::uint32_t>(v), true);
    r = apply_and(r0, r1);
  }
  return r;
}

void Manager::ref(Edge e) { ++nodes_[e.node()].ref; }

void Manager::deref(Edge e) {
  auto& r = nodes_[e.node()].ref;
  if (r == 0) throw std::logic_error("Manager::deref: refcount underflow");
  --r;
}

void Manager::maybe_gc() {
  if (num_allocated_nodes() >= gc_threshold_) {
    garbage_collect();
    // If still mostly full after collection, grow the threshold.
    if (num_allocated_nodes() * 4 >= gc_threshold_ * 3) gc_threshold_ *= 2;
  }
}

std::size_t Manager::num_live_nodes() const {
  // Mark from externally referenced roots.
  std::vector<bool> mark(nodes_.size(), false);
  std::vector<std::uint32_t> stack;
  for (std::uint32_t i = 1; i < nodes_.size(); ++i)
    if (nodes_[i].ref > 0) stack.push_back(i);
  std::size_t live = 0;
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    if (mark[n]) continue;
    mark[n] = true;
    ++live;
    const Node& node = nodes_[n];
    if (node.lo.node() != kTerminal && !mark[node.lo.node()])
      stack.push_back(node.lo.node());
    if (node.hi.node() != kTerminal && !mark[node.hi.node()])
      stack.push_back(node.hi.node());
  }
  return live;
}

void Manager::garbage_collect() {
  ++gc_count_;
  ++stats_.gc_runs;
  std::vector<bool> mark(nodes_.size(), false);
  mark[kTerminal] = true;
  std::vector<std::uint32_t> stack;
  for (std::uint32_t i = 1; i < nodes_.size(); ++i)
    if (nodes_[i].ref > 0) stack.push_back(i);
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    if (mark[n]) continue;
    mark[n] = true;
    const Node& node = nodes_[n];
    if (!mark[node.lo.node()]) stack.push_back(node.lo.node());
    if (!mark[node.hi.node()]) stack.push_back(node.hi.node());
  }
  // Sweep: the flat unique table has no tombstones, so instead of erasing
  // dead entries it is cleared and rebuilt from the marked nodes -- this
  // also re-packs the probe chains. The computed table is cleared in
  // place, keeping its capacity.
  std::vector<bool> is_free(nodes_.size(), false);
  for (std::uint32_t f : free_) is_free[f] = true;
  unique_.clear();
  for (std::uint32_t i = 1; i < nodes_.size(); ++i) {
    if (mark[i]) {
      const Node& node = nodes_[i];
      unique_.insert(UniqueKey{node.var, node.lo.bits, node.hi.bits}, i);
    } else if (!is_free[i]) {
      free_.push_back(i);
    }
  }
  computed_.clear();
}

}  // namespace l2l::bdd
