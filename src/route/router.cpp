#include "route/router.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <set>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace l2l::route {
namespace {

// Flushes the route's local RouteStats to the metrics registry on every
// exit path (convergence, stall, budget). Inner loops only touch
// sol.stats; obs sees one batched update per routing call.
class RouteMetricsFlusher {
 public:
  RouteMetricsFlusher(const RouteStats& stats, std::string_view span_name)
      : stats_(obs::enabled() ? &stats : nullptr), span_(span_name) {}
  ~RouteMetricsFlusher() {
    if (stats_ == nullptr) return;
    obs::count("route.calls");
    obs::count("route.nets_routed", stats_->routed);
    obs::count("route.nets_failed", stats_->failed);
    obs::count("route.ripups", stats_->ripups);
    obs::count("route.negotiation_iterations", stats_->negotiation_iterations);
    obs::count("route.expansions", stats_->expansions);
    obs::count("route.vias", stats_->total_vias);
    obs::count("route.wire_cells",
               static_cast<std::int64_t>(stats_->total_wire));
    obs::observe("route.expansions_per_call", stats_->expansions);
  }

 private:
  const RouteStats* stats_;  // null when collection is disabled
  obs::ScopedSpan span_;
};

/// Bounding-box half-perimeter of a net's pins: routing order heuristic.
int net_span(const gen::RoutingNet& net) {
  int xmin = 1 << 30, xmax = -(1 << 30), ymin = 1 << 30, ymax = -(1 << 30);
  for (const auto& p : net.pins) {
    xmin = std::min(xmin, p.x);
    xmax = std::max(xmax, p.x);
    ymin = std::min(ymin, p.y);
    ymax = std::max(ymax, p.y);
  }
  return (xmax - xmin) + (ymax - ymin);
}

/// Route one net on the occupancy grid; returns nullopt on failure.
/// Pins must already be owned by the net in `occ` (route_all reserves all
/// pins up front so earlier nets cannot route through them). On success
/// the net's wire cells are additionally marked; on failure only the wire
/// cells are released -- pins stay reserved.
std::optional<NetRoute> route_net(const gen::RoutingNet& net, Occupancy& occ,
                                  const RouteCosts& costs, RouteStats& stats) {
  NetRoute r;
  r.net_id = net.id;
  r.cells.assign(net.pins.begin(), net.pins.end());
  std::vector<GridPoint> claimed_wires;

  // Connect pins one at a time into the growing tree.
  std::vector<GridPoint> tree{net.pins.front()};
  for (std::size_t k = 1; k < net.pins.size(); ++k) {
    const auto path =
        find_path(occ, tree, {net.pins[k]}, net.id, costs);
    if (!path) {
      for (const auto& c : claimed_wires) occ.set(c, Occupancy::kFree);
      return std::nullopt;
    }
    stats.expansions += path->expansions;
    for (const auto& c : path->cells) {
      if (occ.at(c) != net.id) {
        occ.set(c, net.id);
        claimed_wires.push_back(c);
        r.cells.push_back(c);
      }
      tree.push_back(c);
    }
  }
  std::sort(r.cells.begin(), r.cells.end());
  r.cells.erase(std::unique(r.cells.begin(), r.cells.end()), r.cells.end());
  r.routed = true;
  return r;
}

}  // namespace

namespace {

/// Negotiated-congestion routing (PathFinder-style). Pins are hard
/// obstacles for other nets throughout; wires may transiently share cells,
/// priced by growing present-sharing and history penalties until every
/// cell has one owner (or the iteration budget runs out, after which the
/// still-shared nets fall back to hard sequential routing).
///
/// Each iteration selects a rip-up set (unrouted nets plus the losing
/// sharers of each overused cell; the first net in routing order holds)
/// and routes it against a snapshot of the usage/history state taken at
/// the iteration's start. Chunks of the set route concurrently on
/// worker-local copies of the grids -- Gauss-Seidel within a chunk,
/// Jacobi across chunks -- and commit in ascending net order. Chunk
/// boundaries are fixed by the grain, never the lane count, so the
/// solution is bit-identical at any L2L_THREADS value. Small rip-up sets
/// and stall-escape sweeps run sequentially with live commits, which is
/// what finally untangles the last contested cells.
RouteSolution route_negotiated(const gen::RoutingProblem& p,
                               const RouterOptions& opt) {
  RouteSolution sol;
  RouteMetricsFlusher metrics(sol.stats, "route.negotiated");
  sol.nets.resize(p.nets.size());
  for (std::size_t n = 0; n < p.nets.size(); ++n)
    sol.nets[n].net_id = p.nets[n].id;

  Occupancy occ(p);  // obstacles only, plus pin reservations below
  std::set<GridPoint> pin_cells;
  for (const auto& net : p.nets)
    for (const auto& pin : net.pins) {
      occ.set(pin, net.id);
      pin_cells.insert(pin);
    }

  const std::size_t n_points = static_cast<std::size_t>(p.width) *
                               static_cast<std::size_t>(p.height) *
                               static_cast<std::size_t>(p.num_layers);
  auto idx = [&](const GridPoint& g) {
    return (static_cast<std::size_t>(g.layer) * static_cast<std::size_t>(p.height) +
            static_cast<std::size_t>(g.y)) * static_cast<std::size_t>(p.width) +
           static_cast<std::size_t>(g.x);
  };

  std::vector<int> usage(n_points, 0);        // wires sharing each cell
  std::vector<double> history(n_points, 0.0);
  std::vector<std::vector<GridPoint>> wires(p.nets.size());
  std::vector<bool> reachable(p.nets.size(), true);

  std::vector<std::size_t> order(p.nets.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return net_span(p.nets[a]) < net_span(p.nets[b]);
  });

  std::vector<double> extra_base(n_points, 0.0);
  std::vector<bool> have_route(p.nets.size(), false);
  bool converged = false;
  // Stall escape: if the overused-cell count stops shrinking, the frozen
  // clean routes are boxing the contested nets in. One full sequential
  // sweep (every net, live commit -- the classic algorithm) lets the
  // surrounding nets shift and make room. Both the counter and the sweep
  // are thread-count independent.
  constexpr int kStallLimit = 2;
  std::size_t best_over = static_cast<std::size_t>(-1);
  int stall = 0;
  for (int iter = 0; iter < opt.max_negotiation_iterations; ++iter) {
    // Resource guard: one step per negotiation iteration. On exhaustion
    // break to finalization -- clean nets keep their wires, so a cut-short
    // run still returns every net routed so far.
    if (opt.budget && (!opt.budget->consume(1) || opt.budget->exhausted())) {
      sol.status = opt.budget->status();
      if (sol.status.ok())
        sol.status = util::Status::budget("routing iteration budget exhausted");
      break;
    }
    sol.stats.negotiation_iterations = iter + 1;
    const double present = opt.present_factor * (iter + 1);
    // Snapshot penalty field for this iteration: everyone's current wires.
    for (std::size_t i = 0; i < n_points; ++i)
      extra_base[i] = history[i] + present * usage[i];

    // Rip-up set: nets not yet routed plus the *losing* sharers of each
    // overused cell. The first net in routing order that uses a contested
    // cell holds its route; everyone else on that cell rips up. The hold
    // policy keeps the asymmetry that makes sequential negotiation
    // converge — without it, all sharers would flee the same snapshot to
    // the same alternative cell and oscillate. Clean nets keep their
    // wires, which also bounds per-iteration work.
    std::vector<std::int32_t> holder(n_points, -1);
    for (const std::size_t n : order) {
      if (!reachable[n]) continue;
      for (const auto& c : wires[n]) {
        const std::size_t i = idx(c);
        if (usage[i] > 1 && holder[i] < 0)
          holder[i] = static_cast<std::int32_t>(n);
      }
    }
    // Escalate on stall, and always spend the final budget iterations
    // on full sweeps so a budget-limited run ends with the same cleanup
    // the classic algorithm would have applied.
    const bool escalate = stall >= kStallLimit ||
                          iter + 2 >= opt.max_negotiation_iterations;
    if (escalate) stall = 0;
    std::vector<std::size_t> active;
    active.reserve(p.nets.size());
    for (const std::size_t n : order) {
      if (!reachable[n]) continue;
      bool rip = escalate || !have_route[n];
      for (std::size_t w = 0; !rip && w < wires[n].size(); ++w) {
        const std::size_t i = idx(wires[n][w]);
        rip = usage[i] > 1 && holder[i] != static_cast<std::int32_t>(n);
      }
      if (rip) active.push_back(n);
    }

    if (std::getenv("L2L_ROUTE_DEBUG")) {
      std::size_t over = 0;
      for (std::size_t i = 0; i < n_points; ++i) over += usage[i] > 1;
      std::fprintf(stderr, "iter=%d active=%zu overused=%zu\n", iter,
                   active.size(), over);
    }

    // Small rip-up sets (the negotiation tail, where a handful of nets
    // contest a handful of cells) resolve with live Gauss-Seidel commits:
    // each net sees the routes the previous nets just picked, which is
    // what breaks the final stand-offs that snapshot routing can only
    // escape through history build-up. The trigger depends only on the
    // set size, so the schedule is identical at any thread count.
    constexpr std::size_t kSequentialTail = 16;
    if (escalate || (!active.empty() && active.size() <= kSequentialTail)) {
      for (const std::size_t n : active) {
        for (const auto& c : wires[n]) {
          const std::size_t i = idx(c);
          --usage[i];
          extra_base[i] = history[i] + present * usage[i];
        }
        wires[n].clear();
        std::vector<GridPoint> tree{p.nets[n].pins.front()};
        std::vector<GridPoint> claimed;
        bool ok = true;
        for (std::size_t k = 1; k < p.nets[n].pins.size(); ++k) {
          const auto path = find_path(occ, tree, {p.nets[n].pins[k]},
                                      p.nets[n].id, opt.costs, &extra_base);
          if (!path) {
            ok = false;
            break;
          }
          sol.stats.expansions += path->expansions;
          for (const auto& c : path->cells) {
            if (occ.at(c) != p.nets[n].id) {
              occ.set(c, p.nets[n].id);  // temporary: reuse own tree
              claimed.push_back(c);
            }
            tree.push_back(c);
          }
        }
        for (const auto& c : claimed) occ.set(c, Occupancy::kFree);
        have_route[n] = ok;
        if (!ok) {
          reachable[n] = false;
          continue;
        }
        wires[n] = std::move(claimed);
        for (const auto& c : wires[n]) {
          const std::size_t i = idx(c);
          ++usage[i];
          extra_base[i] = history[i] + present * usage[i];
        }
      }
      std::size_t over_tail = 0;
      for (std::size_t i = 0; i < n_points; ++i) over_tail += usage[i] > 1;
      obs::count("route.overflow", static_cast<std::int64_t>(over_tail));
      if (over_tail == 0) {
        converged = true;
        break;
      }
      if (over_tail >= best_over) {
        ++stall;
      } else {
        best_over = over_tail;
        stall = 0;
      }
      for (std::size_t i = 0; i < n_points; ++i)
        if (usage[i] > 1) history[i] += opt.history_increment;
      ++sol.stats.ripups;
      continue;
    }

    struct NetAttempt {
      bool attempted = false;
      bool ok = false;
      std::vector<GridPoint> new_wires;
      long long expansions = 0;
    };
    std::vector<NetAttempt> attempts(p.nets.size());

    // Route the rip-up set concurrently. Each chunk works on private
    // copies of the occupancy grid (for the transient self-marks that let
    // a net reuse its growing tree) and the penalty field. Within a chunk
    // the nets run Gauss-Seidel: each net's old wires are unpriced and its
    // new wires priced into the chunk-private field before the next net
    // routes, so chunk-mates never pile onto the same corridor. Chunk
    // boundaries come from the grain, never the lane count, and the chunk
    // state depends only on the snapshot plus the chunk's own nets -- so
    // the result is identical no matter which worker routes which chunk.
    constexpr std::int64_t kNetGrain = 8;
    util::parallel_for_chunks(
        0, static_cast<std::int64_t>(active.size()), kNetGrain,
        [&](std::int64_t cb, std::int64_t ce) {
          Occupancy socc = occ;
          std::vector<double> sextra = extra_base;
          for (std::int64_t t = cb; t < ce; ++t) {
            const std::size_t n = active[static_cast<std::size_t>(t)];
            auto& at = attempts[n];
            at.attempted = true;
            for (const auto& c : wires[n]) sextra[idx(c)] -= present;
            std::vector<GridPoint> tree{p.nets[n].pins.front()};
            std::vector<GridPoint> claimed;
            bool ok = true;
            for (std::size_t k = 1; k < p.nets[n].pins.size(); ++k) {
              const auto path = find_path(socc, tree, {p.nets[n].pins[k]},
                                          p.nets[n].id, opt.costs, &sextra);
              if (!path) {
                ok = false;
                break;
              }
              at.expansions += path->expansions;
              for (const auto& c : path->cells) {
                if (socc.at(c) != p.nets[n].id) {
                  socc.set(c, p.nets[n].id);  // temporary: reuse own tree
                  claimed.push_back(c);
                }
                tree.push_back(c);
              }
            }
            for (const auto& c : claimed) socc.set(c, Occupancy::kFree);
            at.ok = ok;
            if (ok) {
              // Chunk-local commit: the next chunk-mate prices these wires.
              for (const auto& c : claimed) sextra[idx(c)] += present;
              at.new_wires = std::move(claimed);
            } else {
              // Re-price the old wires we removed above.
              for (const auto& c : wires[n]) sextra[idx(c)] += present;
            }
          }
        });

    // Commit in ascending net order: update the sharing counts from the
    // attempts. Results are already fixed; this order pins the stats.
    for (std::size_t n = 0; n < p.nets.size(); ++n) {
      auto& at = attempts[n];
      if (!at.attempted) continue;
      sol.stats.expansions += at.expansions;
      for (const auto& c : wires[n]) --usage[idx(c)];
      wires[n].clear();
      have_route[n] = at.ok;
      if (!at.ok) {
        reachable[n] = false;  // blocked even with sharing: truly unroutable
        continue;
      }
      wires[n] = std::move(at.new_wires);
      for (const auto& c : wires[n]) ++usage[idx(c)];
    }
    std::size_t over = 0;
    for (std::size_t i = 0; i < n_points; ++i) over += usage[i] > 1;
    obs::count("route.overflow", static_cast<std::int64_t>(over));
    if (over == 0) {
      converged = true;
      break;
    }
    if (over >= best_over) {
      ++stall;
    } else {
      best_over = over;
      stall = 0;
    }
    for (std::size_t i = 0; i < n_points; ++i)
      if (usage[i] > 1) history[i] += opt.history_increment;
    ++sol.stats.ripups;
  }

  // Finalize with hard ownership. After convergence every wire is already
  // exclusive; if negotiation stalled (a few genuinely contested cells),
  // nets whose wires are clean keep them and the contested nets get one
  // hard reroute attempt each.
  {
    Occupancy hard(p);
    for (const auto& net : p.nets)
      for (const auto& pin : net.pins) hard.set(pin, net.id);

    std::vector<std::size_t> contested;
    for (const std::size_t n : order) {
      if (!reachable[n]) continue;
      bool clean = true;
      for (const auto& c : wires[n])
        if (hard.at(c) != Occupancy::kFree && hard.at(c) != p.nets[n].id) {
          clean = false;
          break;
        }
      if (!clean) {
        contested.push_back(n);
        continue;
      }
      for (const auto& c : wires[n]) hard.set(c, p.nets[n].id);
      auto& out = sol.nets[n];
      out.cells.assign(p.nets[n].pins.begin(), p.nets[n].pins.end());
      out.cells.insert(out.cells.end(), wires[n].begin(), wires[n].end());
      std::sort(out.cells.begin(), out.cells.end());
      out.cells.erase(std::unique(out.cells.begin(), out.cells.end()),
                      out.cells.end());
      out.routed = true;
    }
    for (const std::size_t n : contested) {
      auto r = route_net(p.nets[n], hard, opt.costs, sol.stats);
      if (r) sol.nets[n] = std::move(*r);
    }
    (void)converged;
  }

  for (const auto& net : sol.nets) {
    if (net.routed) {
      ++sol.stats.routed;
      sol.stats.total_wire += static_cast<double>(net.cells.size());
      sol.stats.total_vias += count_vias(net);
    } else {
      ++sol.stats.failed;
    }
  }
  return sol;
}

}  // namespace

int count_vias(const NetRoute& net) {
  std::set<std::pair<int, int>> layer0, layer1;
  for (const auto& c : net.cells)
    (c.layer == 0 ? layer0 : layer1).insert({c.x, c.y});
  int vias = 0;
  for (const auto& xy : layer0)
    if (layer1.count(xy)) ++vias;
  return vias;
}

RouteSolution route_all(const gen::RoutingProblem& p, const RouterOptions& opt) {
  if (opt.negotiated) return route_negotiated(p, opt);
  RouteSolution sol;
  RouteMetricsFlusher metrics(sol.stats, "route.route_all");
  sol.nets.resize(p.nets.size());
  for (std::size_t n = 0; n < p.nets.size(); ++n)
    sol.nets[n].net_id = p.nets[n].id;

  Occupancy occ(p);
  // Reserve every pin up front so no net can route over another's pins.
  std::set<GridPoint> pin_cells;
  for (const auto& net : p.nets)
    for (const auto& pin : net.pins) {
      occ.set(pin, net.id);
      pin_cells.insert(pin);
    }

  // Route shortest-span nets first.
  std::vector<std::size_t> order(p.nets.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return net_span(p.nets[a]) < net_span(p.nets[b]);
  });

  std::vector<std::size_t> pending = order;
  for (int iter = 0; iter <= opt.max_ripup_iterations && !pending.empty();
       ++iter) {
    // Resource guard: one step per rip-up iteration (mirrors the
    // negotiated path). Nets already committed stay routed.
    if (opt.budget && (!opt.budget->consume(1) || opt.budget->exhausted())) {
      sol.status = opt.budget->status();
      if (sol.status.ok())
        sol.status = util::Status::budget("routing iteration budget exhausted");
      break;
    }
    std::vector<std::size_t> failed;
    for (const std::size_t n : pending) {
      auto r = route_net(p.nets[n], occ, opt.costs, sol.stats);
      if (r) {
        sol.nets[n] = std::move(*r);
      } else {
        failed.push_back(n);
      }
    }
    if (failed.empty() || iter == opt.max_ripup_iterations) {
      pending = std::move(failed);
      break;
    }
    // Rip-up: free all wires (pins stay reserved) and retry with the
    // failed nets first. (A simple, effective course-scale scheme.)
    for (auto& net : sol.nets) {
      if (!net.routed) continue;
      for (const auto& c : net.cells)
        if (!pin_cells.count(c)) occ.set(c, Occupancy::kFree);
      net.routed = false;
      net.cells.clear();
      ++sol.stats.ripups;
    }
    std::vector<std::size_t> next = failed;
    for (const std::size_t n : order)
      if (std::find(failed.begin(), failed.end(), n) == failed.end())
        next.push_back(n);
    pending = std::move(next);
  }

  for (const auto& net : sol.nets) {
    if (net.routed) {
      ++sol.stats.routed;
      sol.stats.total_wire += static_cast<double>(net.cells.size());
      sol.stats.total_vias += count_vias(net);
    } else {
      ++sol.stats.failed;
    }
  }
  return sol;
}

}  // namespace l2l::route
