#include "route/router.hpp"

#include <algorithm>
#include <numeric>
#include <set>

namespace l2l::route {
namespace {

/// Bounding-box half-perimeter of a net's pins: routing order heuristic.
int net_span(const gen::RoutingNet& net) {
  int xmin = 1 << 30, xmax = -(1 << 30), ymin = 1 << 30, ymax = -(1 << 30);
  for (const auto& p : net.pins) {
    xmin = std::min(xmin, p.x);
    xmax = std::max(xmax, p.x);
    ymin = std::min(ymin, p.y);
    ymax = std::max(ymax, p.y);
  }
  return (xmax - xmin) + (ymax - ymin);
}

/// Route one net on the occupancy grid; returns nullopt on failure.
/// Pins must already be owned by the net in `occ` (route_all reserves all
/// pins up front so earlier nets cannot route through them). On success
/// the net's wire cells are additionally marked; on failure only the wire
/// cells are released -- pins stay reserved.
std::optional<NetRoute> route_net(const gen::RoutingNet& net, Occupancy& occ,
                                  const RouteCosts& costs, RouteStats& stats) {
  NetRoute r;
  r.net_id = net.id;
  r.cells.assign(net.pins.begin(), net.pins.end());
  std::vector<GridPoint> claimed_wires;

  // Connect pins one at a time into the growing tree.
  std::vector<GridPoint> tree{net.pins.front()};
  for (std::size_t k = 1; k < net.pins.size(); ++k) {
    const auto path =
        find_path(occ, tree, {net.pins[k]}, net.id, costs);
    if (!path) {
      for (const auto& c : claimed_wires) occ.set(c, Occupancy::kFree);
      return std::nullopt;
    }
    stats.expansions += path->expansions;
    for (const auto& c : path->cells) {
      if (occ.at(c) != net.id) {
        occ.set(c, net.id);
        claimed_wires.push_back(c);
        r.cells.push_back(c);
      }
      tree.push_back(c);
    }
  }
  std::sort(r.cells.begin(), r.cells.end());
  r.cells.erase(std::unique(r.cells.begin(), r.cells.end()), r.cells.end());
  r.routed = true;
  return r;
}

}  // namespace

namespace {

/// Negotiated-congestion routing (PathFinder-style). Pins are hard
/// obstacles for other nets throughout; wires may transiently share cells,
/// priced by growing present-sharing and history penalties until every
/// cell has one owner (or the iteration budget runs out, after which the
/// still-shared nets fall back to hard sequential routing).
RouteSolution route_negotiated(const gen::RoutingProblem& p,
                               const RouterOptions& opt) {
  RouteSolution sol;
  sol.nets.resize(p.nets.size());
  for (std::size_t n = 0; n < p.nets.size(); ++n)
    sol.nets[n].net_id = p.nets[n].id;

  Occupancy occ(p);  // obstacles only, plus pin reservations below
  std::set<GridPoint> pin_cells;
  for (const auto& net : p.nets)
    for (const auto& pin : net.pins) {
      occ.set(pin, net.id);
      pin_cells.insert(pin);
    }

  const std::size_t n_points = static_cast<std::size_t>(p.width) *
                               static_cast<std::size_t>(p.height) *
                               static_cast<std::size_t>(p.num_layers);
  auto idx = [&](const GridPoint& g) {
    return (static_cast<std::size_t>(g.layer) * static_cast<std::size_t>(p.height) +
            static_cast<std::size_t>(g.y)) * static_cast<std::size_t>(p.width) +
           static_cast<std::size_t>(g.x);
  };

  std::vector<int> usage(n_points, 0);        // wires sharing each cell
  std::vector<double> history(n_points, 0.0);
  std::vector<std::vector<GridPoint>> wires(p.nets.size());
  std::vector<bool> reachable(p.nets.size(), true);

  std::vector<std::size_t> order(p.nets.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return net_span(p.nets[a]) < net_span(p.nets[b]);
  });

  std::vector<double> extra(n_points, 0.0);
  bool converged = false;
  for (int iter = 0; iter < opt.max_negotiation_iterations; ++iter) {
    sol.stats.negotiation_iterations = iter + 1;
    const double present = opt.present_factor * (iter + 1);
    for (const std::size_t n : order) {
      if (!reachable[n]) continue;
      // Remove this net's previous wires from the sharing counts.
      for (const auto& c : wires[n]) --usage[idx(c)];
      wires[n].clear();
      // Penalty field reflecting everyone else's current wires.
      for (std::size_t i = 0; i < n_points; ++i)
        extra[i] = history[i] + present * usage[i];

      std::vector<GridPoint> tree{p.nets[n].pins.front()};
      std::vector<GridPoint> claimed;
      bool ok = true;
      for (std::size_t k = 1; k < p.nets[n].pins.size(); ++k) {
        const auto path = find_path(occ, tree, {p.nets[n].pins[k]},
                                    p.nets[n].id, opt.costs, &extra);
        if (!path) {
          ok = false;
          break;
        }
        sol.stats.expansions += path->expansions;
        for (const auto& c : path->cells) {
          if (occ.at(c) != p.nets[n].id) {
            occ.set(c, p.nets[n].id);  // temporary: lets the net reuse itself
            claimed.push_back(c);
          }
          tree.push_back(c);
        }
      }
      // Release the temporary marks; record wires in the sharing counts.
      for (const auto& c : claimed) occ.set(c, Occupancy::kFree);
      if (!ok) {
        reachable[n] = false;  // blocked even with sharing: truly unroutable
        continue;
      }
      wires[n] = std::move(claimed);
      for (const auto& c : wires[n]) ++usage[idx(c)];
    }
    bool overused = false;
    for (std::size_t i = 0; i < n_points && !overused; ++i)
      overused = usage[i] > 1;
    if (!overused) {
      converged = true;
      break;
    }
    for (std::size_t i = 0; i < n_points; ++i)
      if (usage[i] > 1) history[i] += opt.history_increment;
    ++sol.stats.ripups;
  }

  // Finalize with hard ownership. After convergence every wire is already
  // exclusive; if negotiation stalled (a few genuinely contested cells),
  // nets whose wires are clean keep them and the contested nets get one
  // hard reroute attempt each.
  {
    Occupancy hard(p);
    for (const auto& net : p.nets)
      for (const auto& pin : net.pins) hard.set(pin, net.id);

    std::vector<std::size_t> contested;
    for (const std::size_t n : order) {
      if (!reachable[n]) continue;
      bool clean = true;
      for (const auto& c : wires[n])
        if (hard.at(c) != Occupancy::kFree && hard.at(c) != p.nets[n].id) {
          clean = false;
          break;
        }
      if (!clean) {
        contested.push_back(n);
        continue;
      }
      for (const auto& c : wires[n]) hard.set(c, p.nets[n].id);
      auto& out = sol.nets[n];
      out.cells.assign(p.nets[n].pins.begin(), p.nets[n].pins.end());
      out.cells.insert(out.cells.end(), wires[n].begin(), wires[n].end());
      std::sort(out.cells.begin(), out.cells.end());
      out.cells.erase(std::unique(out.cells.begin(), out.cells.end()),
                      out.cells.end());
      out.routed = true;
    }
    for (const std::size_t n : contested) {
      auto r = route_net(p.nets[n], hard, opt.costs, sol.stats);
      if (r) sol.nets[n] = std::move(*r);
    }
    (void)converged;
  }

  for (const auto& net : sol.nets) {
    if (net.routed) {
      ++sol.stats.routed;
      sol.stats.total_wire += static_cast<double>(net.cells.size());
      sol.stats.total_vias += count_vias(net);
    } else {
      ++sol.stats.failed;
    }
  }
  return sol;
}

}  // namespace

int count_vias(const NetRoute& net) {
  std::set<std::pair<int, int>> layer0, layer1;
  for (const auto& c : net.cells)
    (c.layer == 0 ? layer0 : layer1).insert({c.x, c.y});
  int vias = 0;
  for (const auto& xy : layer0)
    if (layer1.count(xy)) ++vias;
  return vias;
}

RouteSolution route_all(const gen::RoutingProblem& p, const RouterOptions& opt) {
  if (opt.negotiated) return route_negotiated(p, opt);
  RouteSolution sol;
  sol.nets.resize(p.nets.size());
  for (std::size_t n = 0; n < p.nets.size(); ++n)
    sol.nets[n].net_id = p.nets[n].id;

  Occupancy occ(p);
  // Reserve every pin up front so no net can route over another's pins.
  std::set<GridPoint> pin_cells;
  for (const auto& net : p.nets)
    for (const auto& pin : net.pins) {
      occ.set(pin, net.id);
      pin_cells.insert(pin);
    }

  // Route shortest-span nets first.
  std::vector<std::size_t> order(p.nets.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return net_span(p.nets[a]) < net_span(p.nets[b]);
  });

  std::vector<std::size_t> pending = order;
  for (int iter = 0; iter <= opt.max_ripup_iterations && !pending.empty();
       ++iter) {
    std::vector<std::size_t> failed;
    for (const std::size_t n : pending) {
      auto r = route_net(p.nets[n], occ, opt.costs, sol.stats);
      if (r) {
        sol.nets[n] = std::move(*r);
      } else {
        failed.push_back(n);
      }
    }
    if (failed.empty() || iter == opt.max_ripup_iterations) {
      pending = std::move(failed);
      break;
    }
    // Rip-up: free all wires (pins stay reserved) and retry with the
    // failed nets first. (A simple, effective course-scale scheme.)
    for (auto& net : sol.nets) {
      if (!net.routed) continue;
      for (const auto& c : net.cells)
        if (!pin_cells.count(c)) occ.set(c, Occupancy::kFree);
      net.routed = false;
      net.cells.clear();
      ++sol.stats.ripups;
    }
    std::vector<std::size_t> next = failed;
    for (const std::size_t n : order)
      if (std::find(failed.begin(), failed.end(), n) == failed.end())
        next.push_back(n);
    pending = std::move(next);
  }

  for (const auto& net : sol.nets) {
    if (net.routed) {
      ++sol.stats.routed;
      sol.stats.total_wire += static_cast<double>(net.cells.size());
      sol.stats.total_vias += count_vias(net);
    } else {
      ++sol.stats.failed;
    }
  }
  return sol;
}

}  // namespace l2l::route
