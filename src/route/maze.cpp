#include "route/maze.hpp"

#include <algorithm>
#include <limits>
#include <queue>

namespace l2l::route {

Occupancy::Occupancy(const gen::RoutingProblem& p)
    : width_(p.width), height_(p.height), layers_(p.num_layers) {
  cells_.assign(static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_) *
                    static_cast<std::size_t>(layers_),
                kFree);
  for (int layer = 0; layer < layers_; ++layer)
    for (int y = 0; y < height_; ++y)
      for (int x = 0; x < width_; ++x)
        if (p.blocked[static_cast<std::size_t>(layer)]
                     [static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
                      static_cast<std::size_t>(x)])
          set({x, y, layer}, kObstacle);
}

namespace {

// Directions: 0=+x, 1=-x, 2=+y, 3=-y, 4=via, 5=start.
constexpr int kDirs = 6;
constexpr int kDx[4] = {1, -1, 0, 0};
constexpr int kDy[4] = {0, 0, 1, -1};

struct QEntry {
  double f;      // g + heuristic
  double g;
  int state;     // packed (point, dir)
  bool operator>(const QEntry& o) const { return f > o.f; }
};

}  // namespace

std::optional<PathResult> find_path(const Occupancy& occ,
                                    const std::vector<GridPoint>& sources,
                                    const std::vector<GridPoint>& targets,
                                    int net_id, const RouteCosts& costs,
                                    const std::vector<double>* extra_cost) {
  const int w = occ.width(), h = occ.height(), layers = occ.layers();
  const std::size_t n_points = static_cast<std::size_t>(w) *
                               static_cast<std::size_t>(h) *
                               static_cast<std::size_t>(layers);
  auto point_index = [&](const GridPoint& g) {
    return (static_cast<std::size_t>(g.layer) * static_cast<std::size_t>(h) +
            static_cast<std::size_t>(g.y)) * static_cast<std::size_t>(w) +
           static_cast<std::size_t>(g.x);
  };
  auto unpack = [&](std::size_t pi) {
    GridPoint g;
    g.x = static_cast<int>(pi % static_cast<std::size_t>(w));
    g.y = static_cast<int>((pi / static_cast<std::size_t>(w)) % static_cast<std::size_t>(h));
    g.layer = static_cast<int>(pi / (static_cast<std::size_t>(w) * static_cast<std::size_t>(h)));
    return g;
  };

  if (targets.empty()) return std::nullopt;

  std::vector<bool> is_target(n_points, false);
  for (const auto& t : targets) is_target[point_index(t)] = true;

  // A* heuristic: cheapest possible remaining cost = manhattan distance to
  // the closest target times the unit wire cost (admissible: every step
  // costs at least `wire`; vias only add). A single target is a closed
  // form; for multi-target calls the per-(x,y) nearest-target distance is
  // precomputed once by multi-source BFS on the (unobstructed) plane
  // instead of scanning every target on every push.
  const std::size_t plane = static_cast<std::size_t>(w) * static_cast<std::size_t>(h);
  std::vector<int> target_dist;
  if (costs.use_astar && targets.size() > 1) {
    target_dist.assign(plane, -1);
    std::vector<std::size_t> frontier;
    for (const auto& t : targets) {
      const std::size_t xy = static_cast<std::size_t>(t.y) * static_cast<std::size_t>(w) +
                             static_cast<std::size_t>(t.x);
      if (target_dist[xy] != 0) {
        target_dist[xy] = 0;
        frontier.push_back(xy);
      }
    }
    for (int d = 1; !frontier.empty(); ++d) {
      std::vector<std::size_t> next;
      for (const std::size_t xy : frontier) {
        const int x = static_cast<int>(xy % static_cast<std::size_t>(w));
        const int y = static_cast<int>(xy / static_cast<std::size_t>(w));
        for (int k = 0; k < 4; ++k) {
          const int nx = x + kDx[k], ny = y + kDy[k];
          if (nx < 0 || nx >= w || ny < 0 || ny >= h) continue;
          const std::size_t nxy = static_cast<std::size_t>(ny) * static_cast<std::size_t>(w) +
                                  static_cast<std::size_t>(nx);
          if (target_dist[nxy] < 0) {
            target_dist[nxy] = d;
            next.push_back(nxy);
          }
        }
      }
      frontier = std::move(next);
    }
  }
  auto heuristic = [&](const GridPoint& g) -> double {
    if (!costs.use_astar) return 0.0;
    if (!target_dist.empty())
      return target_dist[static_cast<std::size_t>(g.y) * static_cast<std::size_t>(w) +
                         static_cast<std::size_t>(g.x)] *
             costs.wire;
    const auto& t = targets.front();
    return (std::abs(g.x - t.x) + std::abs(g.y - t.y)) * costs.wire;
  };

  auto passable = [&](const GridPoint& g) {
    const int v = occ.at(g);
    return v == Occupancy::kFree || v == net_id;
  };
  auto own = [&](const GridPoint& g) { return occ.at(g) == net_id; };

  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(n_points * kDirs, kInf);
  std::vector<int> parent(n_points * kDirs, -1);  // packed predecessor state
  std::priority_queue<QEntry, std::vector<QEntry>, std::greater<QEntry>> pq;

  auto push = [&](std::size_t pi, int dir, double g, int from_state) {
    const std::size_t s = pi * kDirs + static_cast<std::size_t>(dir);
    if (g < dist[s]) {
      dist[s] = g;
      parent[s] = from_state;
      pq.push({g + heuristic(unpack(pi)), g, static_cast<int>(s)});
    }
  };

  for (const auto& src : sources) {
    if (!occ.in_bounds(src) || !passable(src)) continue;
    push(point_index(src), 5, 0.0, -1);
  }

  int expansions = 0;
  int goal_state = -1;
  while (!pq.empty()) {
    const auto [f, g, state] = pq.top();
    pq.pop();
    const auto s = static_cast<std::size_t>(state);
    if (g > dist[s]) continue;  // stale entry
    ++expansions;
    const std::size_t pi = s / kDirs;
    const int dir = static_cast<int>(s % kDirs);
    if (is_target[pi]) {
      goal_state = state;
      break;
    }
    const GridPoint here = unpack(pi);

    // Planar moves.
    for (int d = 0; d < 4; ++d) {
      const GridPoint next{here.x + kDx[d], here.y + kDy[d], here.layer};
      if (!occ.in_bounds(next) || !passable(next)) continue;
      double step = own(next) ? 0.0 : costs.wire;
      if (!own(next) && extra_cost) step += (*extra_cost)[point_index(next)];
      if (costs.preferred_directions && !own(next)) {
        // Layer 0 prefers horizontal (d 0/1); layer 1 vertical (d 2/3).
        const bool preferred = here.layer == 0 ? d < 2 : d >= 2;
        if (!preferred) step += costs.wrong_way;
      }
      if (dir < 4 && dir != d) step += costs.bend;
      push(point_index(next), d, g + step, state);
    }
    // Via move.
    for (int dl = -1; dl <= 1; dl += 2) {
      const GridPoint next{here.x, here.y, here.layer + dl};
      if (!occ.in_bounds(next) || !passable(next)) continue;
      double step = own(next) ? 0.0 : costs.via;
      if (!own(next) && extra_cost) step += (*extra_cost)[point_index(next)];
      push(point_index(next), 4, g + step, state);
    }
  }
  if (goal_state < 0) return std::nullopt;

  PathResult res;
  res.cost = dist[static_cast<std::size_t>(goal_state)];
  res.expansions = expansions;
  for (int s = goal_state; s >= 0; s = parent[static_cast<std::size_t>(s)])
    res.cells.push_back(unpack(static_cast<std::size_t>(s) / kDirs));
  std::reverse(res.cells.begin(), res.cells.end());
  // Source cells reached at zero cost may duplicate when the path touches
  // the net's own tree; dedupe consecutive repeats.
  res.cells.erase(std::unique(res.cells.begin(), res.cells.end()),
                  res.cells.end());
  return res;
}

}  // namespace l2l::route
