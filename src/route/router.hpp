#pragma once
// Sequential multi-net routing with rip-up-and-reroute. Nets are routed
// one at a time (shortest bounding box first); nets that fail rip up the
// blocking nets and retry, bounded by an iteration budget.

#include <vector>

#include "route/maze.hpp"
#include "util/budget.hpp"
#include "util/rng.hpp"

namespace l2l::route {

struct NetRoute {
  int net_id = -1;
  bool routed = false;
  /// All grid cells owned by the net (pins included), forming a connected
  /// tree over its layers.
  std::vector<GridPoint> cells;
};

struct RouteStats {
  int routed = 0;
  int failed = 0;
  int ripups = 0;
  int negotiation_iterations = 0;  ///< iterations until congestion cleared
  double total_wire = 0.0;         ///< wire cells beyond the first per net
  int total_vias = 0;
  long long expansions = 0;
};

struct RouterOptions {
  RouteCosts costs;
  /// Negotiated congestion (PathFinder-style): nets may initially share
  /// cells; sharing is priced with growing present + history penalties
  /// until every cell has a single owner. Converges to far higher
  /// completion than sequential routing on congested problems.
  bool negotiated = true;
  int max_negotiation_iterations = 40;
  double present_factor = 0.6;     ///< per-iteration sharing penalty growth
  double history_increment = 3.0;  ///< added to each overused cell per iter
  /// Sequential-mode (negotiated = false) rip-up budget; also the budget
  /// of the hard fallback pass when negotiation fails to converge.
  int max_ripup_iterations = 3;
  /// Optional resource guard (not owned; must outlive route_all). Each
  /// negotiation / rip-up iteration consumes one budget step; the deadline
  /// and cancellation token are polled at the same boundary. On exhaustion
  /// the router breaks to finalization and returns a partial solution
  /// (clean nets keep their routes) with RouteSolution::status explaining
  /// why. Step-limited runs stop at a deterministic iteration.
  const util::Budget* budget = nullptr;
};

struct RouteSolution {
  std::vector<NetRoute> nets;  ///< in problem net order
  RouteStats stats;
  util::Status status;  ///< non-ok when a resource guard cut routing short
};

/// Route every net of the problem.
RouteSolution route_all(const gen::RoutingProblem& p,
                        const RouterOptions& opt = {});

/// Count vias (adjacent same-x/y, different-layer pairs along the cell
/// list is not well defined for trees; this counts cells that appear on
/// both layers at the same (x, y)).
int count_vias(const NetRoute& net);

}  // namespace l2l::route
