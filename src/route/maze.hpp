#pragma once
// Grid maze routing (Week 7 / MOOC Project 4): multi-layer Lee wavefront /
// Dijkstra / A* expansion with non-unit costs -- via cost, bend penalty,
// and preferred-direction ("wrong-way") penalty. Layer 0 prefers
// horizontal wires, layer 1 vertical, like the project's 2-layer scheme.

#include <optional>
#include <vector>

#include "gen/routing_gen.hpp"

namespace l2l::route {

using gen::GridPoint;

struct RouteCosts {
  double wire = 1.0;       ///< cost per grid step
  double via = 10.0;       ///< cost per layer change
  double bend = 1.0;       ///< penalty for turning within a layer
  double wrong_way = 4.0;  ///< extra cost for non-preferred direction
  bool preferred_directions = true;  ///< false: both layers isotropic
  bool use_astar = true;   ///< false: plain Dijkstra (Lee when costs unit)
};

/// Occupancy grid shared by all nets during routing. Cell values:
/// kFree, kObstacle, or a net id >= 0.
class Occupancy {
 public:
  static constexpr int kFree = -1;
  static constexpr int kObstacle = -2;

  explicit Occupancy(const gen::RoutingProblem& p);

  int at(const GridPoint& g) const {
    return cells_[index(g)];
  }
  void set(const GridPoint& g, int v) { cells_[index(g)] = v; }

  int width() const { return width_; }
  int height() const { return height_; }
  int layers() const { return layers_; }

  bool in_bounds(const GridPoint& g) const {
    return g.x >= 0 && g.x < width_ && g.y >= 0 && g.y < height_ &&
           g.layer >= 0 && g.layer < layers_;
  }

 private:
  std::size_t index(const GridPoint& g) const {
    return (static_cast<std::size_t>(g.layer) * static_cast<std::size_t>(height_) +
            static_cast<std::size_t>(g.y)) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(g.x);
  }
  int width_, height_, layers_;
  std::vector<int> cells_;
};

struct PathResult {
  std::vector<GridPoint> cells;  ///< contiguous path, source to target
  double cost = 0.0;
  int expansions = 0;            ///< search effort (wavefront size)
};

/// Find a cheapest path from any of `sources` to any of `targets`. Cells
/// occupied by other nets or obstacles are impassable; cells owned by
/// `net_id` are passable at zero wire cost (reuse of the net's own tree).
///
/// `extra_cost`, when non-null, is a per-point additive penalty (indexed
/// like the occupancy grid: (layer * height + y) * width + x) applied on
/// entering any cell the net does not already own -- the hook used by the
/// negotiated-congestion router (history + present-sharing costs).
std::optional<PathResult> find_path(const Occupancy& occ,
                                    const std::vector<GridPoint>& sources,
                                    const std::vector<GridPoint>& targets,
                                    int net_id, const RouteCosts& costs,
                                    const std::vector<double>* extra_cost = nullptr);

}  // namespace l2l::route
