#include "route/solution.hpp"

#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace l2l::route {

std::string write_solution(const RouteSolution& sol) {
  std::string out = util::format("%d\n", static_cast<int>(sol.nets.size()));
  for (const auto& net : sol.nets) {
    out += util::format("net %d\n", net.net_id);
    for (const auto& c : net.cells)
      out += util::format("(%d %d %d)\n", c.x, c.y, c.layer);
    out += "!\n";
  }
  return out;
}

RouteSolution parse_solution(const std::string& text) {
  RouteSolution sol;
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line))
    throw std::invalid_argument("solution: empty file");
  const int declared = std::stoi(std::string(util::trim(line)));
  NetRoute* current = nullptr;
  while (std::getline(in, line)) {
    const auto t = std::string(util::trim(line));
    if (t.empty()) continue;
    if (util::starts_with(t, "net ")) {
      sol.nets.emplace_back();
      current = &sol.nets.back();
      current->net_id = std::stoi(t.substr(4));
      continue;
    }
    if (t == "!") {
      if (!current) throw std::invalid_argument("solution: '!' before net");
      current->routed = !current->cells.empty();
      current = nullptr;
      continue;
    }
    if (t.front() == '(') {
      if (!current) throw std::invalid_argument("solution: cell before net");
      const auto tok = util::split(t, "() \t");
      if (tok.size() != 3)
        throw std::invalid_argument("solution: bad cell line '" + t + "'");
      current->cells.push_back(
          {std::stoi(tok[0]), std::stoi(tok[1]), std::stoi(tok[2])});
      continue;
    }
    throw std::invalid_argument("solution: unrecognized line '" + t + "'");
  }
  if (current) throw std::invalid_argument("solution: missing final '!'");
  if (static_cast<int>(sol.nets.size()) != declared)
    throw std::invalid_argument("solution: net count mismatch");
  return sol;
}

std::string write_problem(const gen::RoutingProblem& p) {
  std::string out =
      util::format("grid %d %d %d\n", p.width, p.height, p.num_layers);
  int obstacles = 0;
  for (const auto& layer : p.blocked)
    for (const bool b : layer) obstacles += b;
  out += util::format("obstacles %d\n", obstacles);
  for (int layer = 0; layer < p.num_layers; ++layer)
    for (int y = 0; y < p.height; ++y)
      for (int x = 0; x < p.width; ++x)
        if (p.blocked[static_cast<std::size_t>(layer)]
                     [static_cast<std::size_t>(y) * static_cast<std::size_t>(p.width) +
                      static_cast<std::size_t>(x)])
          out += util::format("(%d %d %d)\n", x, y, layer);
  out += util::format("nets %d\n", static_cast<int>(p.nets.size()));
  for (const auto& net : p.nets) {
    out += util::format("net %d %d\n", net.id, static_cast<int>(net.pins.size()));
    for (const auto& pin : net.pins)
      out += util::format("(%d %d %d)\n", pin.x, pin.y, pin.layer);
  }
  return out;
}

gen::RoutingProblem parse_problem(const std::string& text) {
  gen::RoutingProblem p;
  std::istringstream in(text);
  std::string line;

  auto next_line = [&]() {
    while (std::getline(in, line)) {
      const auto t = util::trim(line);
      if (!t.empty()) return std::string(t);
    }
    throw std::invalid_argument("problem: unexpected end of file");
  };
  auto parse_point = [&](const std::string& t) {
    const auto tok = util::split(t, "() \t");
    if (tok.size() != 3)
      throw std::invalid_argument("problem: bad point '" + t + "'");
    return gen::GridPoint{std::stoi(tok[0]), std::stoi(tok[1]), std::stoi(tok[2])};
  };

  {
    const auto tok = util::split(next_line());
    if (tok.size() != 4 || tok[0] != "grid")
      throw std::invalid_argument("problem: missing grid header");
    p.width = std::stoi(tok[1]);
    p.height = std::stoi(tok[2]);
    p.num_layers = std::stoi(tok[3]);
    p.blocked.assign(static_cast<std::size_t>(p.num_layers),
                     std::vector<bool>(static_cast<std::size_t>(p.width) *
                                           static_cast<std::size_t>(p.height),
                                       false));
  }
  {
    const auto tok = util::split(next_line());
    if (tok.size() != 2 || tok[0] != "obstacles")
      throw std::invalid_argument("problem: missing obstacles header");
    const int count = std::stoi(tok[1]);
    for (int k = 0; k < count; ++k) {
      const auto g = parse_point(next_line());
      if (!p.in_bounds(g))
        throw std::invalid_argument("problem: obstacle out of bounds");
      p.blocked[static_cast<std::size_t>(g.layer)]
               [static_cast<std::size_t>(g.y) * static_cast<std::size_t>(p.width) +
                static_cast<std::size_t>(g.x)] = true;
    }
  }
  {
    const auto tok = util::split(next_line());
    if (tok.size() != 2 || tok[0] != "nets")
      throw std::invalid_argument("problem: missing nets header");
    const int count = std::stoi(tok[1]);
    for (int k = 0; k < count; ++k) {
      const auto head = util::split(next_line());
      if (head.size() != 3 || head[0] != "net")
        throw std::invalid_argument("problem: bad net header");
      gen::RoutingNet net;
      net.id = std::stoi(head[1]);
      const int pins = std::stoi(head[2]);
      for (int q = 0; q < pins; ++q) {
        const auto g = parse_point(next_line());
        if (!p.in_bounds(g))
          throw std::invalid_argument("problem: pin out of bounds");
        net.pins.push_back(g);
      }
      p.nets.push_back(std::move(net));
    }
  }
  return p;
}

std::string render_ascii(const gen::RoutingProblem& p, const RouteSolution& sol,
                         int layer) {
  std::vector<std::string> rows(static_cast<std::size_t>(p.height),
                                std::string(static_cast<std::size_t>(p.width), '.'));
  for (int y = 0; y < p.height; ++y)
    for (int x = 0; x < p.width; ++x)
      if (p.blocked[static_cast<std::size_t>(layer)]
                   [static_cast<std::size_t>(y) * static_cast<std::size_t>(p.width) +
                    static_cast<std::size_t>(x)])
        rows[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)] = '#';
  for (const auto& net : sol.nets)
    for (const auto& c : net.cells)
      if (c.layer == layer)
        rows[static_cast<std::size_t>(c.y)][static_cast<std::size_t>(c.x)] =
            static_cast<char>('a' + net.net_id % 26);
  for (const auto& net : p.nets)
    for (const auto& pin : net.pins)
      if (pin.layer == layer)
        rows[static_cast<std::size_t>(pin.y)][static_cast<std::size_t>(pin.x)] = '*';
  std::string out;
  // y grows upward in the course's convention; print top row first.
  for (int y = p.height - 1; y >= 0; --y) out += rows[static_cast<std::size_t>(y)] + "\n";
  return out;
}

}  // namespace l2l::route
