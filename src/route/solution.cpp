#include "route/solution.hpp"

#include <optional>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace l2l::route {

std::string write_solution(const RouteSolution& sol) {
  std::string out = util::format("%d\n", static_cast<int>(sol.nets.size()));
  for (const auto& net : sol.nets) {
    out += util::format("net %d\n", net.net_id);
    for (const auto& c : net.cells)
      out += util::format("(%d %d %d)\n", c.x, c.y, c.layer);
    out += "!\n";
  }
  return out;
}

namespace {

/// 1-based column of the first non-blank character of `raw`.
int content_column(const std::string& raw) {
  const auto pos = raw.find_first_not_of(" \t\r\n");
  return pos == std::string::npos ? 1 : static_cast<int>(pos) + 1;
}

/// Truncate a hostile line for embedding in a message (submissions may
/// contain megabyte-long lines; diagnostics must stay readable).
std::string excerpt(const std::string& t) {
  constexpr std::size_t kMax = 60;
  if (t.size() <= kMax) return t;
  return t.substr(0, kMax) + "...";
}

}  // namespace

ParsedSolution parse_solution_lenient(const std::string& text) {
  ParsedSolution out;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  bool have_header = false;
  NetRoute current;
  bool in_block = false;
  bool poisoned = false;  // current block had a malformed line: drop it

  auto diag = [&](const std::string& raw, std::string msg) {
    out.diagnostics.push_back(
        util::make_error(lineno, content_column(raw), std::move(msg)));
  };

  while (std::getline(in, line)) {
    ++lineno;
    const auto t = std::string(util::trim(line));
    if (t.empty()) continue;
    const bool is_net_header = util::starts_with(t, "net ");
    if (!have_header && !is_net_header) {
      have_header = true;
      if (const auto n = util::parse_int(t)) {
        out.declared_nets = *n;
      } else {
        diag(line, "expected net count, got '" + excerpt(t) + "'");
      }
      continue;
    }
    have_header = true;
    if (is_net_header) {
      if (in_block) {
        diag(line, "new net before '!' terminator; previous net dropped");
      }
      current = NetRoute{};
      in_block = true;
      poisoned = false;
      if (const auto id = util::parse_int(util::trim(t.substr(4)))) {
        current.net_id = *id;
      } else {
        diag(line, "bad net id in '" + excerpt(t) + "'");
        poisoned = true;
      }
      continue;
    }
    if (t == "!") {
      if (!in_block) {
        diag(line, "'!' before any net");
        continue;
      }
      if (!poisoned) {
        current.routed = !current.cells.empty();
        out.solution.nets.push_back(std::move(current));
      }
      current = NetRoute{};
      in_block = false;
      poisoned = false;
      continue;
    }
    if (t.front() == '(') {
      if (!in_block) {
        diag(line, "cell outside a net block");
        continue;
      }
      const auto tok = util::split(t, "() \t");
      std::optional<int> x, y, l;
      if (tok.size() == 3) {
        x = util::parse_int(tok[0]);
        y = util::parse_int(tok[1]);
        l = util::parse_int(tok[2]);
      }
      if (!x || !y || !l) {
        diag(line, "bad cell line '" + excerpt(t) + "'");
        poisoned = true;
        continue;
      }
      if (!poisoned) current.cells.push_back({*x, *y, *l});
      continue;
    }
    diag(line, "unrecognized line '" + excerpt(t) + "'");
    if (in_block) poisoned = true;
  }
  if (in_block)
    diag(line, "missing final '!'; last net dropped");
  if (!have_header)
    out.diagnostics.push_back(util::make_error(0, 0, "empty file"));
  else if (out.declared_nets >= 0 &&
           out.declared_nets != static_cast<int>(out.solution.nets.size()) &&
           out.diagnostics.empty())
    out.diagnostics.push_back(util::make_error(
        1, 1,
        util::format("net count mismatch: header declares %d, file has %d",
                     out.declared_nets,
                     static_cast<int>(out.solution.nets.size()))));
  return out;
}

RouteSolution parse_solution(const std::string& text) {
  auto parsed = parse_solution_lenient(text);
  if (parsed.declared_nets < 0 && parsed.diagnostics.empty())
    parsed.diagnostics.push_back(util::make_error(0, 0, "missing net count"));
  if (!parsed.diagnostics.empty())
    throw std::invalid_argument("solution: " +
                                parsed.diagnostics.front().to_string());
  return std::move(parsed.solution);
}

std::string write_problem(const gen::RoutingProblem& p) {
  std::string out =
      util::format("grid %d %d %d\n", p.width, p.height, p.num_layers);
  int obstacles = 0;
  for (const auto& layer : p.blocked)
    for (const bool b : layer) obstacles += b;
  out += util::format("obstacles %d\n", obstacles);
  for (int layer = 0; layer < p.num_layers; ++layer)
    for (int y = 0; y < p.height; ++y)
      for (int x = 0; x < p.width; ++x)
        if (p.blocked[static_cast<std::size_t>(layer)]
                     [static_cast<std::size_t>(y) * static_cast<std::size_t>(p.width) +
                      static_cast<std::size_t>(x)])
          out += util::format("(%d %d %d)\n", x, y, layer);
  out += util::format("nets %d\n", static_cast<int>(p.nets.size()));
  for (const auto& net : p.nets) {
    out += util::format("net %d %d\n", net.id, static_cast<int>(net.pins.size()));
    for (const auto& pin : net.pins)
      out += util::format("(%d %d %d)\n", pin.x, pin.y, pin.layer);
  }
  return out;
}

gen::RoutingProblem parse_problem(const std::string& text) {
  gen::RoutingProblem p;
  std::istringstream in(text);
  std::string line;

  auto next_line = [&]() {
    while (std::getline(in, line)) {
      const auto t = util::trim(line);
      if (!t.empty()) return std::string(t);
    }
    throw std::invalid_argument("problem: unexpected end of file");
  };
  auto parse_count = [](const std::vector<std::string>& tok, std::size_t i) {
    const auto v = util::parse_int(tok[i]);
    if (!v || *v < 0)
      throw std::invalid_argument("problem: bad count '" + tok[i] + "'");
    return *v;
  };
  auto parse_point = [&](const std::string& t) {
    const auto tok = util::split(t, "() \t");
    std::optional<int> x, y, l;
    if (tok.size() == 3) {
      x = util::parse_int(tok[0]);
      y = util::parse_int(tok[1]);
      l = util::parse_int(tok[2]);
    }
    if (!x || !y || !l)
      throw std::invalid_argument("problem: bad point '" + excerpt(t) + "'");
    return gen::GridPoint{*x, *y, *l};
  };

  {
    const auto tok = util::split(next_line());
    if (tok.size() != 4 || tok[0] != "grid")
      throw std::invalid_argument("problem: missing grid header");
    const auto w = util::parse_int(tok[1]);
    const auto h = util::parse_int(tok[2]);
    const auto nl = util::parse_int(tok[3]);
    if (!w || !h || !nl)
      throw std::invalid_argument("problem: bad grid header");
    // Sanity caps: a hostile header must not be able to trigger a
    // multi-gigabyte allocation (or a negative->huge size_t wrap) before
    // any real validation happens.
    constexpr int kMaxSide = 1 << 16;
    constexpr int kMaxLayers = 64;
    constexpr long long kMaxCells = 1LL << 26;  // 64M points across layers
    if (*w < 1 || *h < 1 || *w > kMaxSide || *h > kMaxSide)
      throw std::invalid_argument("problem: grid dimensions out of range");
    if (*nl < 1 || *nl > kMaxLayers)
      throw std::invalid_argument("problem: layer count out of range");
    if (static_cast<long long>(*w) * *h * *nl > kMaxCells)
      throw std::invalid_argument("problem: grid too large");
    p.width = *w;
    p.height = *h;
    p.num_layers = *nl;
    p.blocked.assign(static_cast<std::size_t>(p.num_layers),
                     std::vector<bool>(static_cast<std::size_t>(p.width) *
                                           static_cast<std::size_t>(p.height),
                                       false));
  }
  {
    const auto tok = util::split(next_line());
    if (tok.size() != 2 || tok[0] != "obstacles")
      throw std::invalid_argument("problem: missing obstacles header");
    const int count = parse_count(tok, 1);
    for (int k = 0; k < count; ++k) {
      const auto g = parse_point(next_line());
      if (!p.in_bounds(g))
        throw std::invalid_argument("problem: obstacle out of bounds");
      p.blocked[static_cast<std::size_t>(g.layer)]
               [static_cast<std::size_t>(g.y) * static_cast<std::size_t>(p.width) +
                static_cast<std::size_t>(g.x)] = true;
    }
  }
  {
    const auto tok = util::split(next_line());
    if (tok.size() != 2 || tok[0] != "nets")
      throw std::invalid_argument("problem: missing nets header");
    const int count = parse_count(tok, 1);
    for (int k = 0; k < count; ++k) {
      const auto head = util::split(next_line());
      if (head.size() != 3 || head[0] != "net")
        throw std::invalid_argument("problem: bad net header");
      gen::RoutingNet net;
      const auto id = util::parse_int(head[1]);
      if (!id) throw std::invalid_argument("problem: bad net id");
      net.id = *id;
      const int pins = parse_count(head, 2);
      for (int q = 0; q < pins; ++q) {
        const auto g = parse_point(next_line());
        if (!p.in_bounds(g))
          throw std::invalid_argument("problem: pin out of bounds");
        net.pins.push_back(g);
      }
      p.nets.push_back(std::move(net));
    }
  }
  return p;
}

std::string render_ascii(const gen::RoutingProblem& p, const RouteSolution& sol,
                         int layer) {
  std::vector<std::string> rows(static_cast<std::size_t>(p.height),
                                std::string(static_cast<std::size_t>(p.width), '.'));
  for (int y = 0; y < p.height; ++y)
    for (int x = 0; x < p.width; ++x)
      if (p.blocked[static_cast<std::size_t>(layer)]
                   [static_cast<std::size_t>(y) * static_cast<std::size_t>(p.width) +
                    static_cast<std::size_t>(x)])
        rows[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)] = '#';
  for (const auto& net : sol.nets)
    for (const auto& c : net.cells)
      if (c.layer == layer)
        rows[static_cast<std::size_t>(c.y)][static_cast<std::size_t>(c.x)] =
            static_cast<char>('a' + net.net_id % 26);
  for (const auto& net : p.nets)
    for (const auto& pin : net.pins)
      if (pin.layer == layer)
        rows[static_cast<std::size_t>(pin.y)][static_cast<std::size_t>(pin.x)] = '*';
  std::string out;
  // y grows upward in the course's convention; print top row first.
  for (int y = p.height - 1; y >= 0; --y) out += rows[static_cast<std::size_t>(y)] + "\n";
  return out;
}

}  // namespace l2l::route
