#pragma once
// ASCII routing-solution format, mirroring the MOOC project's contract:
// the auto-grader consumed plain text files describing each net's cells.
//
//   <num_nets>
//   net <id>
//   (x y layer)
//   ...
//   !
//
// plus a problem writer so tools can round-trip benchmarks.

#include <string>
#include <vector>

#include "route/router.hpp"
#include "util/status.hpp"

namespace l2l::route {

/// Serialize a solution (routed nets only keep their cells; failed nets
/// are emitted with no cells so graders can assign partial credit).
std::string write_solution(const RouteSolution& sol);

/// Result of the tolerant parse below: every independently well-formed
/// `net ... !` block is salvaged into `solution`; each malformed region
/// produces one line/column-anchored diagnostic and poisons only its own
/// block, so a typo on net 3 never costs a student credit for net 7.
struct ParsedSolution {
  RouteSolution solution;                     ///< salvaged nets only
  std::vector<util::Diagnostic> diagnostics;  ///< empty = clean parse
  int declared_nets = -1;                     ///< header count, -1 if absent

  bool clean() const { return diagnostics.empty(); }
};

/// Tolerant parse of a solution file. Never throws.
ParsedSolution parse_solution_lenient(const std::string& text);

/// Strict parse. Throws std::invalid_argument on any malformed text
/// (thin wrapper over parse_solution_lenient for round-trip callers that
/// want hard failures, e.g. tests and tools reading their own output).
RouteSolution parse_solution(const std::string& text);

/// Serialize a routing problem (grid, obstacles, nets) as ASCII text.
std::string write_problem(const gen::RoutingProblem& p);

/// Parse a routing problem.
gen::RoutingProblem parse_problem(const std::string& text);

/// Render layer maps as ASCII art (debug/teaching aid): '.' free,
/// '#' obstacle, 'a'..'z' net cells (mod 26), '*' pins.
std::string render_ascii(const gen::RoutingProblem& p, const RouteSolution& sol,
                         int layer);

}  // namespace l2l::route
