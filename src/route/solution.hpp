#pragma once
// ASCII routing-solution format, mirroring the MOOC project's contract:
// the auto-grader consumed plain text files describing each net's cells.
//
//   <num_nets>
//   net <id>
//   (x y layer)
//   ...
//   !
//
// plus a problem writer so tools can round-trip benchmarks.

#include <string>

#include "route/router.hpp"

namespace l2l::route {

/// Serialize a solution (routed nets only keep their cells; failed nets
/// are emitted with no cells so graders can assign partial credit).
std::string write_solution(const RouteSolution& sol);

/// Parse a solution file. Throws std::invalid_argument on malformed text.
RouteSolution parse_solution(const std::string& text);

/// Serialize a routing problem (grid, obstacles, nets) as ASCII text.
std::string write_problem(const gen::RoutingProblem& p);

/// Parse a routing problem.
gen::RoutingProblem parse_problem(const std::string& text);

/// Render layer maps as ASCII art (debug/teaching aid): '.' free,
/// '#' obstacle, 'a'..'z' net cells (mod 26), '*' pins.
std::string render_ascii(const gen::RoutingProblem& p, const RouteSolution& sol,
                         int layer);

}  // namespace l2l::route
