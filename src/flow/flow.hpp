#pragma once
// The complete "logic to layout" flow -- the course's arc in one call:
//
//   BLIF netlist
//     -> multi-level logic optimization        (Week 3-4)
//     -> technology mapping                    (Week 5)
//     -> placement (quadratic + legalization)  (Week 6)
//     -> 2-layer maze routing                  (Week 7)
//     -> static timing with Elmore wire delay  (Week 8)
//
// Gate placement/routing operate on a synthetic pin geometry derived from
// the mapped netlist (one cell per gate, one routing net per multi-fanout
// signal), closing the loop from logic to layout.

#include <string>

#include "gen/placement_gen.hpp"
#include "gen/routing_gen.hpp"
#include "network/network.hpp"
#include "place/legalize.hpp"
#include "route/router.hpp"
#include "techmap/mapper.hpp"
#include "timing/sta.hpp"
#include "util/budget.hpp"

namespace l2l::flow {

struct FlowOptions {
  bool optimize_logic = true;
  techmap::MapObjective objective = techmap::MapObjective::kArea;
  int grid_margin_percent = 100;  ///< extra sites beyond cell count
  int route_grid_per_site = 5;   ///< routing-grid resolution per site
  int route_ripup_iterations = 6;
  std::uint64_t seed = 1;
  /// Optional resource guard (not owned; must outlive run_flow), checked
  /// at every stage boundary and forwarded into the placer and router so
  /// the long-running stages stop mid-work too. On exhaustion run_flow
  /// returns the stages completed so far with FlowResult::status non-ok
  /// and stopped_stage naming the first stage that did not finish.
  const util::Budget* budget = nullptr;
};

struct FlowResult {
  // Synthesis.
  int literals_before = 0;
  int literals_after = 0;
  // Mapping.
  techmap::MapResult mapped;
  // Placement.
  gen::PlacementProblem placement_problem;
  place::Grid grid;
  place::GridPlacement placement;
  double hpwl = 0.0;
  // Routing.
  gen::RoutingProblem routing_problem;
  route::RouteSolution routing;
  // Timing.
  timing::TimingResult timing;
  double gate_delay = 0.0;   ///< STA with cell delays only
  double worst_wire_delay = 0.0;

  /// kOk when the flow ran to completion; otherwise why it stopped early
  /// (budget/deadline/cancellation, or kInternalError on an unexpected
  /// exception). Stages before stopped_stage hold valid results.
  util::Status status;
  std::string stopped_stage;  ///< first stage that did not finish

  std::string report() const;
};

/// Run the whole flow on a logic network. Never throws: resource-guard
/// trips and internal errors are reported via FlowResult::status with the
/// completed stages' results intact.
FlowResult run_flow(const network::Network& input, const FlowOptions& opt = {});

}  // namespace l2l::flow
