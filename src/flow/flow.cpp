#include "flow/flow.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <optional>
#include <set>

#include "api/mls.hpp"
#include "api/place.hpp"
#include "api/route.hpp"
#include "mls/script.hpp"
#include "network/blif.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "timing/elmore.hpp"
#include "util/strings.hpp"

namespace l2l::flow {

using network::Network;
using network::NodeId;
using network::NodeType;

std::string FlowResult::report() const {
  std::string out;
  out += util::format("synthesis: %d -> %d literals\n", literals_before,
                      literals_after);
  out += util::format("mapping:   %d gates, area %.1f, gate delay %.2f\n",
                      static_cast<int>(mapped.gates.size()), mapped.total_area,
                      mapped.critical_delay);
  out += util::format("placement: %d cells on %dx%d grid, HPWL %.1f\n",
                      placement_problem.num_cells, grid.rows,
                      grid.sites_per_row, hpwl);
  out += util::format("routing:   %d/%d nets, wire %d cells, %d vias\n",
                      routing.stats.routed,
                      routing.stats.routed + routing.stats.failed,
                      static_cast<int>(routing.stats.total_wire),
                      routing.stats.total_vias);
  out += util::format("timing:    critical %.2f (gates %.2f, worst wire %.2f)\n",
                      timing.critical_delay, gate_delay, worst_wire_delay);
  return out;
}

namespace {

/// Flow body. Fills `res` stage by stage; returns early (leaving `res`
/// partially filled and status set) when the resource guard trips at a
/// stage boundary. run_flow() wraps this with the exception barrier.
void run_flow_impl(const Network& input, const FlowOptions& opt,
                   FlowResult& res) {
  // One budget step per completed stage; the placer and router also carry
  // the guard internally so a deadline can stop them mid-stage.
  auto stage_ok = [&](const char* next_stage) {
    if (!opt.budget) return true;
    if (opt.budget->consume(1) && !opt.budget->exhausted()) return true;
    res.status = opt.budget->status();
    if (res.status.ok())
      res.status = util::Status::budget("flow stage budget exhausted");
    res.stopped_stage = next_stage;
    return false;
  };

  // Per-stage spans: emplace closes the previous stage's span before
  // opening the next, so the Chrome trace shows back-to-back intervals.
  std::optional<obs::ScopedSpan> stage_span;

  // ---- Logic optimization (Weeks 3-4) ----------------------------------
  if (!stage_ok("synthesis")) return;
  stage_span.emplace("flow.stage.synthesis", "flow");
  Network net = network::parse_blif(network::write_blif(input));
  res.literals_before = net.num_literals();
  if (opt.optimize_logic) {
    mls::ScriptOptions sopt;
    sopt.use_sdc_simplify = static_cast<int>(net.inputs().size()) <= 16;
    api::optimize_network(net, sopt);
  }
  res.literals_after = net.num_literals();
  obs::gauge_set("flow.literals_before", res.literals_before);
  obs::gauge_set("flow.literals_after", res.literals_after);

  // ---- Technology mapping (Week 5) --------------------------------------
  if (!stage_ok("mapping")) return;
  stage_span.emplace("flow.stage.mapping", "flow");
  const auto lib = techmap::default_library();
  res.mapped = techmap::technology_map(net, lib, opt.objective);
  const Network& mapped = res.mapped.netlist;

  // ---- Placement problem construction -----------------------------------
  // One movable cell per logic gate; one pad per primary input/output.
  auto& prob = res.placement_problem;
  std::map<NodeId, int> cell_of;
  for (NodeId id = 0; id < mapped.num_nodes(); ++id) {
    if (mapped.is_dead(id) || mapped.node(id).type != NodeType::kLogic)
      continue;
    cell_of[id] = prob.num_cells++;
  }
  const int side_cells = std::max(
      2, static_cast<int>(std::ceil(std::sqrt(
             prob.num_cells * (1.0 + opt.grid_margin_percent / 100.0)))));
  prob.width = prob.height = static_cast<double>(side_cells);

  std::map<NodeId, int> pad_of;  // PI/PO node -> pad index
  auto add_pad = [&](NodeId id, const std::string& name) {
    if (pad_of.count(id)) return pad_of[id];
    const int k = static_cast<int>(prob.pads.size());
    const double t =
        static_cast<double>(k) / std::max<std::size_t>(
                                     1, mapped.inputs().size() +
                                            mapped.outputs().size()) * 4.0;
    gen::Pad pad;
    pad.name = name;
    if (t < 1.0) {
      pad.x = t * prob.width;
      pad.y = 0;
    } else if (t < 2.0) {
      pad.x = prob.width;
      pad.y = (t - 1.0) * prob.height;
    } else if (t < 3.0) {
      pad.x = (3.0 - t) * prob.width;
      pad.y = prob.height;
    } else {
      pad.x = 0;
      pad.y = (4.0 - t) * prob.height;
    }
    prob.pads.push_back(pad);
    pad_of[id] = k;
    return k;
  };
  for (const NodeId id : mapped.inputs()) add_pad(id, mapped.node(id).name);

  // One net per driven signal with fanout.
  const auto fanouts = mapped.fanouts();
  const std::set<NodeId> output_set(mapped.outputs().begin(),
                                    mapped.outputs().end());
  std::vector<NodeId> net_driver;  // per placement/routing net
  for (NodeId id = 0; id < mapped.num_nodes(); ++id) {
    if (mapped.is_dead(id)) continue;
    const auto& fo = fanouts[static_cast<std::size_t>(id)];
    const bool is_out = output_set.count(id) > 0;
    if (fo.empty() && !is_out) continue;
    std::vector<gen::Pin> pins;
    if (mapped.node(id).type == NodeType::kInput)
      pins.push_back({true, pad_of.at(id)});
    else
      pins.push_back({false, cell_of.at(id)});
    std::set<int> sink_cells;
    for (const NodeId f : fo)
      if (cell_of.count(f)) sink_cells.insert(cell_of.at(f));
    for (const int c : sink_cells)
      if (!(pins.size() == 1 && !pins[0].is_pad && pins[0].index == c))
        pins.push_back({false, c});
    if (is_out) pins.push_back({true, add_pad(id, mapped.node(id).name + "_po")});
    if (pins.size() < 2) continue;
    prob.nets.push_back(std::move(pins));
    net_driver.push_back(id);
  }
  // Connect any orphan cells (e.g. constants) to pad 0.
  {
    std::vector<bool> used(static_cast<std::size_t>(prob.num_cells), false);
    for (const auto& n : prob.nets)
      for (const auto& p : n)
        if (!p.is_pad) used[static_cast<std::size_t>(p.index)] = true;
    if (prob.pads.empty()) add_pad(mapped.inputs().empty() ? 0 : mapped.inputs()[0], "p0");
    for (int c = 0; c < prob.num_cells; ++c)
      if (!used[static_cast<std::size_t>(c)]) {
        prob.nets.push_back({{false, c}, {true, 0}});
        net_driver.push_back(network::kNoNode);
      }
  }

  obs::gauge_set("flow.mapped_gates",
                 static_cast<std::int64_t>(res.mapped.gates.size()));

  // ---- Place (Week 6) ----------------------------------------------------
  if (!stage_ok("placement")) return;
  stage_span.emplace("flow.stage.placement", "flow");
  res.grid = place::Grid{side_cells, side_cells, prob.width, prob.height};
  api::PlaceRequest preq;
  preq.grid = res.grid;
  preq.options.budget = opt.budget;
  const auto placed = api::place_and_legalize(prob, preq);
  res.placement = placed.placement;
  res.hpwl = placed.hpwl;

  // ---- Routing problem construction (Week 7) -----------------------------
  if (!stage_ok("routing")) return;
  stage_span.emplace("flow.stage.routing", "flow");
  const int resolution = opt.route_grid_per_site;
  auto& rp = res.routing_problem;
  rp.width = side_cells * resolution;
  rp.height = side_cells * resolution;
  rp.num_layers = 2;
  rp.blocked.assign(2, std::vector<bool>(static_cast<std::size_t>(rp.width) *
                                             static_cast<std::size_t>(rp.height),
                                         false));
  // Pin slots: globally distinct routing-grid points inside each cell's
  // tile (or the pad's boundary tile). Tiles are clamped fully in bounds
  // so edge pads cannot collapse onto one point.
  std::map<std::pair<int, int>, int> tile_slots;  // tile -> next slot
  std::set<gen::GridPoint> used_points;
  auto pin_point = [&](const gen::Pin& pin) {
    int bx, by;
    if (pin.is_pad) {
      const auto& pad = prob.pads[static_cast<std::size_t>(pin.index)];
      bx = static_cast<int>(pad.x / prob.width * (rp.width - 1));
      by = static_cast<int>(pad.y / prob.height * (rp.height - 1));
    } else {
      bx = res.placement.col[static_cast<std::size_t>(pin.index)] * resolution;
      by = res.placement.row[static_cast<std::size_t>(pin.index)] * resolution;
    }
    bx = std::clamp(bx, 0, rp.width - resolution);
    by = std::clamp(by, 0, rp.height - resolution);
    auto& slot = tile_slots[{bx, by}];
    while (slot < resolution * resolution) {
      const gen::GridPoint p{bx + slot % resolution,
                             by + (slot / resolution) % resolution, 0};
      ++slot;
      if (used_points.insert(p).second) return p;
    }
    // Tile exhausted (pathological): scan the grid for any free point.
    for (int y = 0; y < rp.height; ++y)
      for (int x = 0; x < rp.width; ++x) {
        const gen::GridPoint p{x, y, 0};
        if (used_points.insert(p).second) return p;
      }
    throw std::logic_error("run_flow: routing grid out of pin sites");
  };
  for (std::size_t n = 0; n < prob.nets.size(); ++n) {
    gen::RoutingNet rn;
    rn.id = static_cast<int>(n);
    std::set<gen::GridPoint> unique_pins;
    for (const auto& pin : prob.nets[n]) unique_pins.insert(pin_point(pin));
    rn.pins.assign(unique_pins.begin(), unique_pins.end());
    if (rn.pins.size() >= 2) rp.nets.push_back(std::move(rn));
  }

  // ---- Route -------------------------------------------------------------
  api::RouteRequest rreq;
  rreq.options.max_ripup_iterations = opt.route_ripup_iterations;
  rreq.options.budget = opt.budget;
  res.routing = api::route_nets(rp, rreq).solution;

  // ---- Timing (Week 8): gate delays + Elmore wire delay ------------------
  if (!stage_ok("timing")) return;
  stage_span.emplace("flow.stage.timing", "flow");
  auto delays = timing::cell_delays(mapped, lib);
  res.gate_delay = timing::analyze(mapped, delays).critical_delay;
  timing::WireParasitics par;
  par.r_per_unit = 0.05;
  par.c_per_unit = 0.1;
  par.via_r = 0.2;
  par.via_c = 0.05;
  par.sink_c = 0.2;
  for (std::size_t n = 0; n < rp.nets.size(); ++n) {
    const auto& sol = res.routing.nets[n];
    if (!sol.routed) continue;
    const auto rn_id = static_cast<std::size_t>(rp.nets[n].id);
    const NodeId driver = rn_id < net_driver.size() ? net_driver[rn_id]
                                                    : network::kNoNode;
    const auto& pins = rp.nets[n].pins;
    std::vector<gen::GridPoint> sinks(pins.begin() + 1, pins.end());
    const auto wire = timing::net_sink_delays(sol, pins[0], sinks, par);
    double worst = 0;
    for (const double d : wire) worst = std::max(worst, d);
    res.worst_wire_delay = std::max(res.worst_wire_delay, worst);
    if (driver != network::kNoNode)
      delays[static_cast<std::size_t>(driver)] += worst;
  }
  res.timing = timing::analyze(mapped, delays);
}

}  // namespace

FlowResult run_flow(const Network& input, const FlowOptions& opt) {
  obs::ScopedSpan span("flow.run", "flow");
  obs::count("flow.runs");
  FlowResult res;
  try {
    run_flow_impl(input, opt, res);
  } catch (const util::BudgetExceededError& e) {
    // A guard tripped inside a stage (e.g. a deadline mid-placement).
    if (res.status.ok()) res.status = e.status();
    if (res.stopped_stage.empty()) res.stopped_stage = "(mid-stage)";
  } catch (const std::exception& e) {
    res.status = util::Status::internal(e.what());
    if (res.stopped_stage.empty()) res.stopped_stage = "(mid-stage)";
  }
  return res;
}

}  // namespace l2l::flow
