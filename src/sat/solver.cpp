#include "sat/solver.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace l2l::sat {

namespace {

// Flushes the delta of the solver's local SolverStats to the metrics
// registry on every exit path of solve() (normal, conflict-limit, budget).
// The inner loops only touch stats_; obs sees one batched update per call.
class SolveMetricsFlusher {
 public:
  SolveMetricsFlusher(const SolverStats& stats)
      : stats_(obs::enabled() ? &stats : nullptr),
        base_(stats),
        span_("sat.solve") {}
  ~SolveMetricsFlusher() {
    if (stats_ == nullptr) return;
    obs::count("sat.solve_calls");
    obs::count("sat.decisions", stats_->decisions - base_.decisions);
    obs::count("sat.propagations", stats_->propagations - base_.propagations);
    obs::count("sat.conflicts", stats_->conflicts - base_.conflicts);
    obs::count("sat.restarts", stats_->restarts - base_.restarts);
    obs::count("sat.learnt_clauses",
               stats_->learnt_clauses - base_.learnt_clauses);
    obs::count("sat.db_reductions",
               stats_->db_reductions - base_.db_reductions);
    obs::observe("sat.conflicts_per_solve",
                 stats_->conflicts - base_.conflicts);
  }

 private:
  const SolverStats* stats_;  // null when collection is disabled
  SolverStats base_;
  obs::ScopedSpan span_;
};

}  // namespace

std::int64_t luby(std::int64_t i) {
  // Find the finite subsequence containing index i and its position.
  std::int64_t size = 1, seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i = i % size;
  }
  return 1ll << seq;
}

Solver::Solver(SolverOptions options) : options_(options) {}
Solver::~Solver() = default;

Var Solver::new_var() {
  const Var v = num_vars();
  assigns_.push_back(LBool::kUndef);
  polarity_.push_back(true);
  activity_.push_back(0.0);
  reason_.push_back(kInvalidClauseRef);
  level_.push_back(0);
  seen_.push_back(0);
  heap_pos_.push_back(-1);
  watches_.emplace_back();  // positive literal
  watches_.emplace_back();  // negative literal
  heap_insert(v);
  return v;
}

void Solver::reserve_vars(int n) {
  while (num_vars() < n) new_var();
}

void Solver::reserve_clauses(std::int64_t total_lits,
                             std::int64_t num_clauses) {
  arena_.reserve(static_cast<std::size_t>(total_lits + num_clauses));
  clauses_.reserve(static_cast<std::size_t>(num_clauses));
}

bool Solver::add_clause(std::vector<Lit> lits) {
  if (!ok_) return false;
  if (decision_level() != 0)
    throw std::logic_error("Solver::add_clause: only legal at level 0");
  for (const Lit p : lits)
    if (p.var() < 0 || p.var() >= num_vars())
      throw std::invalid_argument("Solver::add_clause: unknown variable");

  std::sort(lits.begin(), lits.end());
  std::vector<Lit> kept;
  Lit prev;
  for (const Lit p : lits) {
    if (value(p) == LBool::kTrue) return true;      // satisfied at level 0
    if (p == ~prev) return true;                    // tautology (x | ~x)
    if (p == prev || value(p) == LBool::kFalse) continue;  // dup / false
    kept.push_back(p);
    prev = p;
  }

  if (kept.empty()) {
    ok_ = false;
    return false;
  }
  if (kept.size() == 1) {
    if (!enqueue(kept[0], kInvalidClauseRef)) ok_ = false;
    if (ok_ && propagate() != kInvalidClauseRef) ok_ = false;
    return ok_;
  }
  const ClauseRef c =
      arena_.alloc(kept.data(), static_cast<int>(kept.size()), false);
  attach_clause(c);
  clauses_.push_back(c);
  return true;
}

void Solver::attach_clause(ClauseRef c) {
  const Lit l0 = arena_.lit(c, 0);
  const Lit l1 = arena_.lit(c, 1);
  // Each watch carries the other watched literal as its initial blocker.
  watches_[static_cast<std::size_t>(l0.index())].push_back({c, l1});
  watches_[static_cast<std::size_t>(l1.index())].push_back({c, l0});
}

void Solver::detach_clause(ClauseRef c) {
  for (int k = 0; k < 2; ++k) {
    auto& ws = watches_[static_cast<std::size_t>(arena_.lit(c, k).index())];
    ws.erase(std::find_if(ws.begin(), ws.end(),
                          [c](const Watcher& w) { return w.cref == c; }));
  }
}

bool Solver::enqueue(Lit p, ClauseRef reason) {
  if (value(p) != LBool::kUndef) return value(p) == LBool::kTrue;
  const auto v = static_cast<std::size_t>(p.var());
  assigns_[v] = lbool_from(!p.sign());
  level_[v] = decision_level();
  reason_[v] = reason;
  trail_.push_back(p);
  return true;
}

ClauseRef Solver::propagate() {
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++stats_.propagations;
    const Lit false_lit = ~p;
    auto& ws = watches_[static_cast<std::size_t>(false_lit.index())];
    std::size_t i = 0, j = 0;
    while (i < ws.size()) {
      const Watcher w = ws[i++];
      // Fast path: the blocker is true, the clause is satisfied -- skip it
      // without touching the clause body at all.
      if (value(w.blocker) == LBool::kTrue) {
        ws[j++] = w;
        continue;
      }
      const ClauseRef c = w.cref;
      // Put the falsified literal at position 1.
      if (arena_.lit(c, 0) == false_lit) {
        arena_.set_lit(c, 0, arena_.lit(c, 1));
        arena_.set_lit(c, 1, false_lit);
      }
      const Lit first = arena_.lit(c, 0);
      const Watcher keep{c, first};
      if (first != w.blocker && value(first) == LBool::kTrue) {
        ws[j++] = keep;  // clause already satisfied
        continue;
      }
      // Look for a non-false literal to watch instead.
      bool moved = false;
      const int size = arena_.size(c);
      for (int k = 2; k < size; ++k) {
        const Lit lk = arena_.lit(c, k);
        if (value(lk) != LBool::kFalse) {
          arena_.set_lit(c, 1, lk);
          arena_.set_lit(c, k, false_lit);
          watches_[static_cast<std::size_t>(lk.index())].push_back(
              {c, first});
          moved = true;
          break;
        }
      }
      if (moved) continue;  // watch migrated; drop from this list
      ws[j++] = keep;
      if (value(first) == LBool::kFalse) {
        // Conflict: compact the list and halt propagation.
        while (i < ws.size()) ws[j++] = ws[i++];
        ws.resize(j);
        qhead_ = trail_.size();
        return c;
      }
      enqueue(first, c);  // unit propagation
    }
    ws.resize(j);
  }
  return kInvalidClauseRef;
}

void Solver::analyze(ClauseRef conflict, std::vector<Lit>& out_learnt,
                     int& out_level) {
  out_learnt.clear();
  out_learnt.push_back(Lit());  // slot for the asserting literal
  int path_count = 0;
  Lit p;
  std::size_t index = trail_.size();

  ClauseRef c = conflict;
  do {
    bump_clause(c);
    const int size = arena_.size(c);
    for (int n = 0; n < size; ++n) {
      const Lit q = arena_.lit(c, n);
      if (q == p) continue;  // skip the resolved-on literal
      const auto v = static_cast<std::size_t>(q.var());
      if (!seen_[v] && level_[v] > 0) {
        seen_[v] = 1;
        bump_var(q.var());
        if (level_[v] >= decision_level())
          ++path_count;
        else
          out_learnt.push_back(q);
      }
    }
    // Next trail literal that participates in the conflict.
    while (!seen_[static_cast<std::size_t>(trail_[index - 1].var())]) --index;
    p = trail_[--index];
    c = reason_[static_cast<std::size_t>(p.var())];
    seen_[static_cast<std::size_t>(p.var())] = 0;
    --path_count;
  } while (path_count > 0);
  out_learnt[0] = ~p;

  // Basic (non-recursive) learnt-clause minimization: drop a literal when
  // its reason clause is entirely subsumed by the rest of the learnt.
  std::vector<Var> to_clear;
  to_clear.reserve(out_learnt.size());
  for (const Lit q : out_learnt) to_clear.push_back(q.var());
  std::size_t kept = 1;
  for (std::size_t n = 1; n < out_learnt.size(); ++n) {
    const Lit q = out_learnt[n];
    const ClauseRef r = reason_[static_cast<std::size_t>(q.var())];
    bool redundant = r != kInvalidClauseRef;
    if (r != kInvalidClauseRef) {
      const int rsize = arena_.size(r);
      for (int k = 0; k < rsize; ++k) {
        const Lit x = arena_.lit(r, k);
        if (x.var() == q.var()) continue;
        const auto xv = static_cast<std::size_t>(x.var());
        if (!seen_[xv] && level_[xv] > 0) {
          redundant = false;
          break;
        }
      }
    }
    if (!redundant) out_learnt[kept++] = q;
  }
  for (const Var v : to_clear) seen_[static_cast<std::size_t>(v)] = 0;
  out_learnt.resize(kept);

  // Compute the backtrack level: highest level among the non-asserting
  // literals, and move that literal to the second watch position.
  if (out_learnt.size() == 1) {
    out_level = 0;
  } else {
    std::size_t max_i = 1;
    for (std::size_t n = 2; n < out_learnt.size(); ++n)
      if (level_[static_cast<std::size_t>(out_learnt[n].var())] >
          level_[static_cast<std::size_t>(out_learnt[max_i].var())])
        max_i = n;
    std::swap(out_learnt[1], out_learnt[max_i]);
    out_level = level_[static_cast<std::size_t>(out_learnt[1].var())];
  }
}

void Solver::backtrack(int target_level) {
  if (decision_level() <= target_level) return;
  const auto bound = static_cast<std::size_t>(trail_lim_[static_cast<std::size_t>(target_level)]);
  for (std::size_t k = trail_.size(); k > bound; --k) {
    const Lit p = trail_[k - 1];
    const auto v = static_cast<std::size_t>(p.var());
    assigns_[v] = LBool::kUndef;
    reason_[v] = kInvalidClauseRef;
    if (options_.use_phase_saving) polarity_[v] = p.sign();
    if (heap_pos_[v] < 0) heap_insert(p.var());
  }
  trail_.resize(bound);
  trail_lim_.resize(static_cast<std::size_t>(target_level));
  qhead_ = trail_.size();
}

Lit Solver::pick_branch_lit() {
  Var next = -1;
  if (options_.use_vsids) {
    while (!heap_empty()) {
      const Var v = heap_pop();
      if (value(v) == LBool::kUndef) {
        next = v;
        break;
      }
    }
  } else {
    for (Var v = 0; v < num_vars(); ++v)
      if (value(v) == LBool::kUndef) {
        next = v;
        break;
      }
  }
  if (next < 0) return Lit();  // all assigned
  return Lit(next, polarity_[static_cast<std::size_t>(next)]);
}

void Solver::bump_var(Var v) {
  auto& a = activity_[static_cast<std::size_t>(v)];
  a += var_inc_;
  if (a > 1e100) {
    for (auto& x : activity_) x *= 1e-100;
    var_inc_ *= 1e-100;
  }
  if (heap_pos_[static_cast<std::size_t>(v)] >= 0) heap_update(v);
}

void Solver::decay_var_activity() { var_inc_ /= options_.var_decay; }

void Solver::bump_clause(ClauseRef c) {
  if (!arena_.learnt(c)) return;
  const double a = arena_.activity(c) + clause_inc_;
  arena_.set_activity(c, a);
  if (a > 1e20) {
    for (const ClauseRef cl : learnts_)
      arena_.set_activity(cl, arena_.activity(cl) * 1e-20);
    clause_inc_ *= 1e-20;
  }
}

void Solver::decay_clause_activity() { clause_inc_ /= options_.clause_decay; }

void Solver::reduce_db() {
  ++stats_.db_reductions;
  std::sort(learnts_.begin(), learnts_.end(),
            [this](ClauseRef a, ClauseRef b) {
              return arena_.activity(a) < arena_.activity(b);
            });
  auto locked = [&](ClauseRef c) {
    const Lit first = arena_.lit(c, 0);
    return value(first) == LBool::kTrue &&
           reason_[static_cast<std::size_t>(first.var())] == c;
  };
  std::vector<ClauseRef> kept;
  kept.reserve(learnts_.size());
  const std::size_t drop_target = learnts_.size() / 2;
  std::size_t dropped = 0;
  for (const ClauseRef c : learnts_) {
    if (dropped < drop_target && arena_.size(c) > 2 && !locked(c)) {
      detach_clause(c);
      arena_.free(c);
      ++dropped;
    } else {
      kept.push_back(c);
    }
  }
  learnts_ = std::move(kept);
  // Compact once a fifth of the arena is dead clause bodies.
  if (arena_.wasted_words() > arena_.used_words() / 5) compact_arena();
}

void Solver::compact_arena() {
  ++stats_.arena_compactions;
  ClauseArena to;
  to.reserve(arena_.used_words() - arena_.wasted_words());
  // Live clauses move in deterministic order (problem clauses, then
  // learnts); watches and reasons then resolve through forwarding refs.
  for (ClauseRef& c : clauses_) c = arena_.reloc(c, to);
  for (ClauseRef& c : learnts_) c = arena_.reloc(c, to);
  for (auto& ws : watches_)
    for (Watcher& w : ws) w.cref = arena_.reloc(w.cref, to);
  for (ClauseRef& r : reason_)
    if (r != kInvalidClauseRef) r = arena_.reloc(r, to);
  arena_ = std::move(to);
}

void Solver::rebuild_order_heap() {
  heap_.clear();
  std::fill(heap_pos_.begin(), heap_pos_.end(), -1);
  for (Var v = 0; v < num_vars(); ++v)
    if (value(v) == LBool::kUndef) heap_insert(v);
}

LBool Solver::solve() { return solve({}); }

LBool Solver::solve(const std::vector<Lit>& assumptions) {
  SolveMetricsFlusher metrics(stats_);
  model_.clear();
  stop_reason_ = util::Status::okay();
  if (!ok_) return LBool::kFalse;
  rebuild_order_heap();

  std::int64_t conflicts_since_restart = 0;
  std::int64_t restart_limit =
      options_.restart_base * luby(stats_.restarts);
  const std::int64_t conflict_budget =
      options_.conflict_limit < 0
          ? -1
          : stats_.conflicts + options_.conflict_limit;
  const util::Budget* budget = options_.budget;
  // Propagations already charged to the budget; the delta is consumed at
  // each conflict so the stop point is a deterministic conflict boundary.
  std::int64_t charged_props = stats_.propagations;
  if (budget && budget->exhausted()) {
    stop_reason_ = budget->status();
    return LBool::kUndef;
  }

  LBool result = LBool::kUndef;
  while (result == LBool::kUndef) {
    const ClauseRef conflict = propagate();
    if (conflict != kInvalidClauseRef) {
      ++stats_.conflicts;
      ++conflicts_since_restart;
      if (decision_level() == 0) {
        ok_ = false;
        result = LBool::kFalse;
        break;
      }
      std::vector<Lit> learnt;
      int bt_level = 0;
      analyze(conflict, learnt, bt_level);
      backtrack(bt_level);
      if (learnt.size() == 1) {
        enqueue(learnt[0], kInvalidClauseRef);
      } else {
        const ClauseRef c =
            arena_.alloc(learnt.data(), static_cast<int>(learnt.size()), true);
        arena_.set_activity(c, clause_inc_);
        attach_clause(c);
        enqueue(arena_.lit(c, 0), c);
        stats_.learnt_literals += arena_.size(c);
        learnts_.push_back(c);
        ++stats_.learnt_clauses;
      }
      decay_var_activity();
      decay_clause_activity();
      if (learnts_.size() >= max_learnts_) {
        reduce_db();
        max_learnts_ = max_learnts_ + max_learnts_ / 2;
      }
      if (conflict_budget >= 0 && stats_.conflicts >= conflict_budget) {
        stop_reason_ = util::Status::budget("conflict limit reached");
        backtrack(0);
        return LBool::kUndef;
      }
      if (budget) {
        const bool steps_ok = budget->consume(stats_.propagations - charged_props);
        charged_props = stats_.propagations;
        if (!steps_ok || budget->exhausted()) {
          stop_reason_ = budget->status();
          if (stop_reason_.ok())  // consume() crossed the limit this call
            stop_reason_ = util::Status::budget("propagation budget exhausted");
          backtrack(0);
          return LBool::kUndef;
        }
      }
    } else {
      if (options_.use_restarts && conflicts_since_restart >= restart_limit) {
        ++stats_.restarts;
        conflicts_since_restart = 0;
        restart_limit = options_.restart_base * luby(stats_.restarts);
        backtrack(0);
        continue;
      }
      // Extend with assumptions first, then a free decision.
      Lit next;
      bool next_set = false;
      while (decision_level() < static_cast<int>(assumptions.size())) {
        const Lit p = assumptions[static_cast<std::size_t>(decision_level())];
        if (value(p) == LBool::kTrue) {
          trail_lim_.push_back(static_cast<int>(trail_.size()));  // dummy level
        } else if (value(p) == LBool::kFalse) {
          result = LBool::kFalse;  // assumptions contradict the formula
          break;
        } else {
          next = p;
          next_set = true;
          break;
        }
      }
      if (result != LBool::kUndef) break;
      if (!next_set) {
        next = pick_branch_lit();
        if (next.x < 0) {
          // Complete assignment: record the model.
          model_ = assigns_;
          result = LBool::kTrue;
          break;
        }
        ++stats_.decisions;
      }
      trail_lim_.push_back(static_cast<int>(trail_.size()));
      enqueue(next, kInvalidClauseRef);
    }
  }
  backtrack(0);
  return result;
}

bool Solver::model_satisfies_formula() const {
  if (model_.empty()) return false;
  for (const ClauseRef c : clauses_) {
    bool sat = false;
    const int size = arena_.size(c);
    for (int k = 0; k < size; ++k) {
      const Lit p = arena_.lit(c, k);
      const LBool v = model_[static_cast<std::size_t>(p.var())] ^ p.sign();
      if (v == LBool::kTrue) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  return true;
}

// ---- order heap ---------------------------------------------------------

void Solver::heap_insert(Var v) {
  heap_pos_[static_cast<std::size_t>(v)] = static_cast<int>(heap_.size());
  heap_.push_back(v);
  heap_up(static_cast<int>(heap_.size()) - 1);
}

void Solver::heap_update(Var v) {
  const int i = heap_pos_[static_cast<std::size_t>(v)];
  heap_up(i);
  heap_down(i);
}

Var Solver::heap_pop() {
  const Var top = heap_[0];
  heap_pos_[static_cast<std::size_t>(top)] = -1;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_pos_[static_cast<std::size_t>(heap_[0])] = 0;
    heap_down(0);
  }
  return top;
}

void Solver::heap_up(int i) {
  const Var v = heap_[static_cast<std::size_t>(i)];
  while (i > 0) {
    const int parent = (i - 1) / 2;
    if (!heap_less(heap_[static_cast<std::size_t>(parent)], v)) break;
    heap_[static_cast<std::size_t>(i)] = heap_[static_cast<std::size_t>(parent)];
    heap_pos_[static_cast<std::size_t>(heap_[static_cast<std::size_t>(i)])] = i;
    i = parent;
  }
  heap_[static_cast<std::size_t>(i)] = v;
  heap_pos_[static_cast<std::size_t>(v)] = i;
}

void Solver::heap_down(int i) {
  const Var v = heap_[static_cast<std::size_t>(i)];
  const int n = static_cast<int>(heap_.size());
  for (;;) {
    int child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && heap_less(heap_[static_cast<std::size_t>(child)],
                                   heap_[static_cast<std::size_t>(child + 1)]))
      ++child;
    if (!heap_less(v, heap_[static_cast<std::size_t>(child)])) break;
    heap_[static_cast<std::size_t>(i)] = heap_[static_cast<std::size_t>(child)];
    heap_pos_[static_cast<std::size_t>(heap_[static_cast<std::size_t>(i)])] = i;
    i = child;
  }
  heap_[static_cast<std::size_t>(i)] = v;
  heap_pos_[static_cast<std::size_t>(v)] = i;
}

}  // namespace l2l::sat
