#pragma once
// DIMACS CNF reader/writer -- the interchange format the MOOC's miniSAT
// portal consumed ("Input: Text file / Output: Webpage", Fig. 4).

#include <iosfwd>
#include <string>
#include <vector>

#include "sat/types.hpp"

namespace l2l::sat {

struct CnfFormula {
  int num_vars = 0;
  std::vector<std::vector<Lit>> clauses;
};

/// Parse DIMACS text ("p cnf V C" header, clauses of nonzero ints ending in
/// 0, 'c' comment lines). Throws std::invalid_argument on malformed input.
CnfFormula parse_dimacs(const std::string& text);

/// Serialize to DIMACS text.
std::string write_dimacs(const CnfFormula& f);

class Solver;

/// Load a parsed formula into a solver. Returns false if the formula is
/// detected unsatisfiable already while adding clauses.
bool load_into_solver(const CnfFormula& f, Solver& solver);

/// MiniSat-style result text: "SATISFIABLE" + "v ..." model line, or
/// "UNSATISFIABLE" / "INDETERMINATE".
std::string result_text(Solver& solver, LBool result);

}  // namespace l2l::sat
