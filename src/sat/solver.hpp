#pragma once
// A conflict-driven clause-learning (CDCL) SAT solver in the style of
// MiniSat [8] -- the engine the MOOC deployed as a cloud tool portal.
//
// Features: two-watched-literal propagation with blocker literals, VSIDS
// decision heuristic with phase saving, first-UIP conflict analysis with
// recursive clause minimization (the cheap local variant), Luby-sequence
// restarts, and activity-driven learnt-clause database reduction. VSIDS
// and restarts can be disabled individually -- the perf bench uses this
// as an ablation.
//
// Clause storage is a contiguous uint32 arena (sat/types.hpp): watcher
// lists and reason slots hold 32-bit ClauseRefs, and the arena is
// compacted after learnt-clause reduction once a fifth of it is garbage.

#include <cstdint>
#include <optional>
#include <vector>

#include "sat/types.hpp"
#include "util/budget.hpp"

namespace l2l::sat {

struct SolverOptions {
  bool use_vsids = true;     ///< false: pick the lowest-index unassigned var
  bool use_restarts = true;  ///< false: never restart
  bool use_phase_saving = true;
  double var_decay = 0.95;
  double clause_decay = 0.999;
  int restart_base = 100;        ///< conflicts per Luby unit
  std::int64_t conflict_limit = -1;  ///< -1 = no limit (solve returns kUndef)
  /// Optional resource guard (not owned; must outlive solve()). Consumes
  /// one budget step per propagation, checked at conflict boundaries so a
  /// step-limited run stops at a deterministic point; the deadline and
  /// cancellation token are polled there too. Exhaustion returns kUndef
  /// with stop_reason() explaining why.
  const util::Budget* budget = nullptr;
};

struct SolverStats {
  std::int64_t decisions = 0;
  std::int64_t propagations = 0;
  std::int64_t conflicts = 0;
  std::int64_t restarts = 0;
  std::int64_t learnt_clauses = 0;
  std::int64_t learnt_literals = 0;
  std::int64_t db_reductions = 0;
  std::int64_t arena_compactions = 0;
};

class Solver {
 public:
  explicit Solver(SolverOptions options = {});
  ~Solver();

  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  /// Create a fresh variable; returns its index.
  Var new_var();
  int num_vars() const { return static_cast<int>(assigns_.size()); }

  /// Ensure variables [0, n) exist.
  void reserve_vars(int n);

  /// Size the clause arena for a known ingestion (e.g. a parsed DIMACS
  /// file): `total_lits` literals spread over `num_clauses` clauses means
  /// at most one arena word per literal plus one header word per clause.
  void reserve_clauses(std::int64_t total_lits, std::int64_t num_clauses);

  /// Add a clause (OR of literals). Returns false if the formula is already
  /// unsatisfiable at level 0 (e.g. an empty clause was derived).
  bool add_clause(std::vector<Lit> lits);
  bool add_clause(std::initializer_list<Lit> lits) {
    return add_clause(std::vector<Lit>(lits));
  }
  bool add_unit(Lit p) { return add_clause({p}); }

  int num_clauses() const { return static_cast<int>(clauses_.size()); }

  /// Solve the formula. kTrue = SAT, kFalse = UNSAT, kUndef = conflict
  /// limit hit.
  LBool solve();

  /// Solve under assumptions (temporary unit decisions). The solver state
  /// remains usable afterwards, enabling incremental queries.
  LBool solve(const std::vector<Lit>& assumptions);

  /// After solve() == kTrue: the value of each variable.
  const std::vector<LBool>& model() const { return model_; }
  bool model_value(Var v) const { return model_[static_cast<std::size_t>(v)] == LBool::kTrue; }

  /// Check a model against every original clause (test/debug aid).
  bool model_satisfies_formula() const;

  const SolverStats& stats() const { return stats_; }
  const SolverOptions& options() const { return options_; }

  /// Why the last solve() returned kUndef (kOk after kTrue/kFalse):
  /// kBudgetExceeded (conflict limit or budget steps), kTimeout, or
  /// kCancelled.
  const util::Status& stop_reason() const { return stop_reason_; }

 private:
  LBool value(Lit p) const {
    return assigns_[static_cast<std::size_t>(p.var())] ^ p.sign();
  }
  LBool value(Var v) const { return assigns_[static_cast<std::size_t>(v)]; }
  int decision_level() const { return static_cast<int>(trail_lim_.size()); }

  void attach_clause(ClauseRef c);
  void detach_clause(ClauseRef c);
  bool enqueue(Lit p, ClauseRef reason);
  ClauseRef propagate();
  void analyze(ClauseRef conflict, std::vector<Lit>& out_learnt,
               int& out_level);
  void backtrack(int level);
  Lit pick_branch_lit();
  void bump_var(Var v);
  void decay_var_activity();
  void bump_clause(ClauseRef c);
  void decay_clause_activity();
  void reduce_db();
  void compact_arena();
  void rebuild_order_heap();

  // Order heap (max-heap on activity) -------------------------------
  void heap_insert(Var v);
  void heap_update(Var v);
  Var heap_pop();
  bool heap_empty() const { return heap_.empty(); }
  void heap_up(int i);
  void heap_down(int i);
  bool heap_less(Var a, Var b) const {
    return activity_[static_cast<std::size_t>(a)] < activity_[static_cast<std::size_t>(b)];
  }

  SolverOptions options_;
  SolverStats stats_;
  util::Status stop_reason_;

  ClauseArena arena_;
  std::vector<ClauseRef> clauses_;
  std::vector<ClauseRef> learnts_;
  std::vector<std::vector<Watcher>> watches_;  // indexed by Lit::index()

  std::vector<LBool> assigns_;
  std::vector<bool> polarity_;      // saved phase (true = last was negated)
  std::vector<double> activity_;
  std::vector<ClauseRef> reason_;   // kInvalidClauseRef = decision / none
  std::vector<int> level_;
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  std::size_t qhead_ = 0;

  std::vector<int> heap_;       // heap of vars
  std::vector<int> heap_pos_;   // var -> position in heap_ or -1

  std::vector<LBool> model_;
  std::vector<char> seen_;  // scratch for analyze()

  double var_inc_ = 1.0;
  double clause_inc_ = 1.0;
  bool ok_ = true;  // false once UNSAT at level 0
  std::size_t max_learnts_ = 4096;
};

/// The Luby restart sequence: 1,1,2,1,1,2,4,...
std::int64_t luby(std::int64_t i);

}  // namespace l2l::sat
