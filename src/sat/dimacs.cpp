#include "sat/dimacs.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "sat/solver.hpp"
#include "util/strings.hpp"

namespace l2l::sat {

CnfFormula parse_dimacs(const std::string& text) {
  CnfFormula f;
  int declared_clauses = -1;
  bool have_header = false;
  std::vector<Lit> current;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const auto t = util::trim(line);
    if (t.empty() || t[0] == 'c') continue;
    if (t[0] == 'p') {
      const auto tok = util::split(t);
      if (tok.size() != 4 || tok[1] != "cnf")
        throw std::invalid_argument("DIMACS: malformed problem line");
      const auto nv = util::parse_int(tok[2]);
      const auto nc = util::parse_int(tok[3]);
      if (!nv || !nc || *nv < 0 || *nc < 0)
        throw std::invalid_argument("DIMACS: bad counts in problem line");
      // Sanity cap: the header sizes solver allocations up front, so a
      // hostile "p cnf 2000000000 1" must be rejected here, not OOM later.
      constexpr int kMaxVars = 1 << 24;
      if (*nv > kMaxVars)
        throw std::invalid_argument("DIMACS: variable count out of range");
      f.num_vars = *nv;
      declared_clauses = *nc;
      // Clause count is capped implicitly by the input size (every clause
      // costs at least its terminating "0" token), so reserving up to a
      // modest bound keeps hostile headers from over-allocating.
      f.clauses.reserve(static_cast<std::size_t>(
          std::min(*nc, 1 << 20)));
      have_header = true;
      continue;
    }
    if (!have_header)
      throw std::invalid_argument("DIMACS: clause before problem line");
    for (const auto& tok : util::split(t)) {
      const auto lit = util::parse_int(tok);
      if (!lit)
        throw std::invalid_argument("DIMACS: bad literal '" + tok + "'");
      const int v = *lit;
      if (v == 0) {
        f.clauses.push_back(current);
        current.clear();
      } else {
        // Guard abs() against INT_MIN before computing the variable.
        if (v == std::numeric_limits<int>::min())
          throw std::invalid_argument("DIMACS: literal out of declared range");
        const int var = std::abs(v) - 1;
        if (var >= f.num_vars)
          throw std::invalid_argument("DIMACS: literal out of declared range");
        current.push_back(Lit(var, v < 0));
      }
    }
  }
  if (!current.empty())
    throw std::invalid_argument("DIMACS: last clause missing terminating 0");
  if (declared_clauses >= 0 &&
      static_cast<int>(f.clauses.size()) != declared_clauses)
    throw std::invalid_argument("DIMACS: clause count mismatch");
  return f;
}

std::string write_dimacs(const CnfFormula& f) {
  std::string out = util::format("p cnf %d %d\n", f.num_vars,
                                 static_cast<int>(f.clauses.size()));
  for (const auto& clause : f.clauses) {
    for (const Lit p : clause)
      out += util::format("%d ", (p.var() + 1) * (p.sign() ? -1 : 1));
    out += "0\n";
  }
  return out;
}

bool load_into_solver(const CnfFormula& f, Solver& solver) {
  solver.reserve_vars(f.num_vars);
  // Literal-count pre-pass: one arena reservation up front means clause
  // ingestion never reallocates the clause store.
  std::int64_t total_lits = 0;
  for (const auto& clause : f.clauses)
    total_lits += static_cast<std::int64_t>(clause.size());
  solver.reserve_clauses(total_lits,
                         static_cast<std::int64_t>(f.clauses.size()));
  for (const auto& clause : f.clauses)
    if (!solver.add_clause(clause)) return false;
  return true;
}

std::string result_text(Solver& solver, LBool result) {
  if (result == LBool::kFalse) return "UNSATISFIABLE\n";
  if (result == LBool::kUndef) return "INDETERMINATE\n";
  std::string out = "SATISFIABLE\nv";
  for (Var v = 0; v < solver.num_vars(); ++v)
    out += util::format(" %d", solver.model_value(v) ? v + 1 : -(v + 1));
  out += " 0\n";
  return out;
}

}  // namespace l2l::sat
