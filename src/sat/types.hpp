#pragma once
// Core SAT types: variables, literals, ternary values, clauses.

#include <cstdint>
#include <vector>

namespace l2l::sat {

using Var = int;  ///< 0-based variable index

/// A literal: variable plus sign, packed as 2*var + (negated ? 1 : 0).
struct Lit {
  int x = -2;

  Lit() = default;
  Lit(Var v, bool negated) : x(2 * v + (negated ? 1 : 0)) {}

  Var var() const { return x >> 1; }
  bool sign() const { return x & 1; }  ///< true = negated
  Lit operator~() const {
    Lit q;
    q.x = x ^ 1;
    return q;
  }
  /// Dense index for watch lists.
  int index() const { return x; }
  bool operator==(const Lit&) const = default;
  bool operator<(const Lit& o) const { return x < o.x; }
};

inline Lit mk_lit(Var v, bool negated = false) { return Lit(v, negated); }

/// Ternary logic value.
enum class LBool : std::uint8_t { kFalse = 0, kTrue = 1, kUndef = 2 };

inline LBool lbool_from(bool b) { return b ? LBool::kTrue : LBool::kFalse; }
inline LBool operator^(LBool v, bool flip) {
  if (v == LBool::kUndef) return v;
  return lbool_from((v == LBool::kTrue) != flip);
}

struct Clause {
  std::vector<Lit> lits;
  bool learnt = false;
  double activity = 0.0;

  int size() const { return static_cast<int>(lits.size()); }
  Lit& operator[](int i) { return lits[static_cast<std::size_t>(i)]; }
  Lit operator[](int i) const { return lits[static_cast<std::size_t>(i)]; }
};

}  // namespace l2l::sat
