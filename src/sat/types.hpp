#pragma once
// Core SAT types: variables, literals, ternary values, and the clause
// arena.
//
// Clauses live in one contiguous uint32 arena (ClauseArena) and are named
// by 32-bit word offsets (ClauseRef) instead of heap pointers -- the
// MiniSat RegionAllocator layout. This halves the size of watcher entries
// and reason slots, removes the per-clause malloc, and makes learnt-clause
// reduction compactable: live clauses are copied front-to-back into a
// fresh arena and the old headers turn into forwarding references.
//
// Per-clause layout, in uint32 words:
//   [header] [activity lo, activity hi]? [lit 0] [lit 1] ... [lit n-1]
// header bit 0 = learnt (activity words present), bit 1 = relocated
// (remaining bits are then the forwarding ClauseRef), bits 2+ = size.

#include <bit>
#include <cstdint>
#include <vector>

namespace l2l::sat {

using Var = int;  ///< 0-based variable index

/// A literal: variable plus sign, packed as 2*var + (negated ? 1 : 0).
struct Lit {
  int x = -2;

  Lit() = default;
  Lit(Var v, bool negated) : x(2 * v + (negated ? 1 : 0)) {}

  Var var() const { return x >> 1; }
  bool sign() const { return x & 1; }  ///< true = negated
  Lit operator~() const {
    Lit q;
    q.x = x ^ 1;
    return q;
  }
  /// Dense index for watch lists.
  int index() const { return x; }
  bool operator==(const Lit&) const = default;
  bool operator<(const Lit& o) const { return x < o.x; }
};

inline Lit mk_lit(Var v, bool negated = false) { return Lit(v, negated); }

/// Ternary logic value.
enum class LBool : std::uint8_t { kFalse = 0, kTrue = 1, kUndef = 2 };

inline LBool lbool_from(bool b) { return b ? LBool::kTrue : LBool::kFalse; }
inline LBool operator^(LBool v, bool flip) {
  if (v == LBool::kUndef) return v;
  return lbool_from((v == LBool::kTrue) != flip);
}

/// Word offset of a clause inside the arena.
using ClauseRef = std::uint32_t;
inline constexpr ClauseRef kInvalidClauseRef = 0xFFFFFFFFu;

class ClauseArena {
 public:
  /// Append a clause; returns its ref. Literal order is preserved.
  ClauseRef alloc(const Lit* lits, int size, bool learnt) {
    const auto cr = static_cast<ClauseRef>(mem_.size());
    mem_.push_back((static_cast<std::uint32_t>(size) << 2) |
                   (learnt ? 1u : 0u));
    if (learnt) {
      mem_.push_back(0);
      mem_.push_back(0);
    }
    for (int i = 0; i < size; ++i)
      mem_.push_back(std::bit_cast<std::uint32_t>(lits[i]));
    return cr;
  }

  int size(ClauseRef c) const {
    return static_cast<int>(mem_[c] >> 2);
  }
  bool learnt(ClauseRef c) const { return (mem_[c] & 1u) != 0; }

  Lit lit(ClauseRef c, int i) const {
    return std::bit_cast<Lit>(mem_[lit_base(c) + static_cast<std::size_t>(i)]);
  }
  void set_lit(ClauseRef c, int i, Lit p) {
    mem_[lit_base(c) + static_cast<std::size_t>(i)] =
        std::bit_cast<std::uint32_t>(p);
  }

  /// Learnt-clause activity, stored bit-exact across two words so the
  /// reduce_db sort sees the same doubles a heap clause would carry.
  double activity(ClauseRef c) const {
    const std::uint64_t bits =
        static_cast<std::uint64_t>(mem_[c + 1]) |
        (static_cast<std::uint64_t>(mem_[c + 2]) << 32);
    return std::bit_cast<double>(bits);
  }
  void set_activity(ClauseRef c, double a) {
    const auto bits = std::bit_cast<std::uint64_t>(a);
    mem_[c + 1] = static_cast<std::uint32_t>(bits);
    mem_[c + 2] = static_cast<std::uint32_t>(bits >> 32);
  }

  /// Mark a detached clause's words as garbage (compaction accounting).
  void free(ClauseRef c) { wasted_ += clause_words(c); }

  std::size_t used_words() const { return mem_.size(); }
  std::size_t wasted_words() const { return wasted_; }
  void reserve(std::size_t words) { mem_.reserve(words); }

  // Compaction (relocAll): move a clause into `to`, leaving a forwarding
  // ref behind so later references (watches, reasons) resolve to the copy.
  ClauseRef reloc(ClauseRef c, ClauseArena& to) {
    if ((mem_[c] & 2u) != 0) return mem_[c] >> 2;  // already moved
    const int n = size(c);
    const bool l = learnt(c);
    const auto nc = static_cast<ClauseRef>(to.mem_.size());
    const std::size_t words = clause_words(c);
    to.mem_.insert(to.mem_.end(), mem_.begin() + c,
                   mem_.begin() + static_cast<std::ptrdiff_t>(c + words));
    (void)n;
    (void)l;
    mem_[c] = (nc << 2) | 2u | (mem_[c] & 1u);
    return nc;
  }

 private:
  std::size_t lit_base(ClauseRef c) const {
    return static_cast<std::size_t>(c) + 1 + ((mem_[c] & 1u) ? 2 : 0);
  }
  std::size_t clause_words(ClauseRef c) const {
    return 1 + ((mem_[c] & 1u) ? 2u : 0u) + (mem_[c] >> 2);
  }

  std::vector<std::uint32_t> mem_;
  std::size_t wasted_ = 0;
};

/// Watch-list entry: the clause plus a "blocker" literal (some other
/// literal of the clause). If the blocker is already true the clause is
/// satisfied and propagation skips loading it -- most watcher visits end
/// here, touching only this 8-byte pair instead of the clause body.
struct Watcher {
  ClauseRef cref = kInvalidClauseRef;
  Lit blocker;
};

}  // namespace l2l::sat
