#pragma once
// BDD-based formal network repair -- MOOC software Project 2.
//
// Given an implementation network suspected to contain ONE wrong gate and
// a golden specification network, decide for each gate whether replacing
// only that gate's function can make the implementation match the spec,
// and synthesize the replacement.
//
// Method (the course's formulation): introduce a free BDD variable t for
// the suspect gate's output and build the miter
//     Match(x, t) = AND over outputs ( impl_o(x, t)  XNOR  spec_o(x) ).
// Then E1(x) = Match(x, 1), E0(x) = Match(x, 0):
//   * the gate is repairable  iff  E0 + E1 == 1 (for every input some
//     output value works);
//   * the replacement must be 1 on must1 = E1 & !E0, 0 on must0 = E0 & !E1,
//     and is free elsewhere -- the don't-care flexibility.
// The replacement is finally re-expressed over the gate's own fanins and
// minimized with espresso against the derived don't-care set.

#include <optional>
#include <vector>

#include "cubes/cover.hpp"
#include "network/network.hpp"
#include "util/rng.hpp"

namespace l2l::repair {

struct RepairOptions {
  int max_fanins = 10;   ///< skip gates wider than this (2^k enumeration)
  int max_inputs = 20;   ///< skip networks with more PIs than this
};

struct Repair {
  network::NodeId node = network::kNoNode;
  cubes::Cover new_cover;  ///< over the node's existing fanins
  int dc_patterns = 0;     ///< local don't-care patterns available
};

/// All gates that single-gate repair can fix (replacement expressible over
/// the gate's own fanins). Interfaces are matched by name, like
/// check_equivalence.
std::vector<Repair> diagnose(const network::Network& impl,
                             const network::Network& spec,
                             const RepairOptions& opt = {});

/// Try to repair a specific gate. nullopt when impossible.
std::optional<Repair> try_repair_node(const network::Network& impl,
                                      const network::Network& spec,
                                      network::NodeId node,
                                      const RepairOptions& opt = {});

/// Apply a repair in place.
void apply_repair(network::Network& impl, const Repair& r);

/// Repair the first fixable gate and return it; nullopt when no single-gate
/// repair exists. On success `impl` is modified and verified against spec.
std::optional<Repair> repair_network(network::Network& impl,
                                     const network::Network& spec,
                                     const RepairOptions& opt = {});

/// Test/bench helper: corrupt one random logic gate (replace its cover by
/// a random different one of the same arity). Returns the node changed.
network::NodeId inject_error(network::Network& net, util::Rng& rng);

}  // namespace l2l::repair
