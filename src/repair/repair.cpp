#include "repair/repair.hpp"

#include <stdexcept>
#include <unordered_map>

#include "bdd/bdd.hpp"
#include "espresso/minimize.hpp"
#include "gen/function_gen.hpp"
#include "network/bdd_build.hpp"
#include "network/equivalence.hpp"

namespace l2l::repair {

using network::Network;
using network::NodeId;
using network::NodeType;

namespace {

/// Build BDDs for all nodes of `net`, but treat node `free_node` (if valid)
/// as the free variable `t_var` of the manager. Inputs map to manager vars
/// by `input_var`.
std::vector<bdd::Bdd> build_with_free_node(
    const Network& net, bdd::Manager& mgr,
    const std::vector<int>& input_var, NodeId free_node, int t_var) {
  std::vector<bdd::Bdd> node(static_cast<std::size_t>(net.num_nodes()));
  for (std::size_t i = 0; i < net.inputs().size(); ++i)
    node[static_cast<std::size_t>(net.inputs()[i])] = mgr.var(input_var[i]);
  for (const NodeId id : net.topological_order()) {
    const auto& n = net.node(id);
    if (n.type == NodeType::kInput) continue;
    if (id == free_node) {
      node[static_cast<std::size_t>(id)] = mgr.var(t_var);
      continue;
    }
    bdd::Bdd f = mgr.zero();
    for (const auto& cube : n.cover.cubes()) {
      bdd::Bdd term = mgr.one();
      for (int k = 0; k < static_cast<int>(n.fanins.size()); ++k) {
        const auto code = cube.code(k);
        if (code == cubes::Pcn::kDontCare) continue;
        const auto& fi = node[static_cast<std::size_t>(n.fanins[static_cast<std::size_t>(k)])];
        term = term & (code == cubes::Pcn::kPos ? fi : !fi);
      }
      f = f | term;
    }
    node[static_cast<std::size_t>(id)] = std::move(f);
  }
  return node;
}

}  // namespace

std::optional<Repair> try_repair_node(const Network& impl, const Network& spec,
                                      NodeId node, const RepairOptions& opt) {
  const auto& suspect = impl.node(node);
  if (suspect.type != NodeType::kLogic) return std::nullopt;
  const int arity = static_cast<int>(suspect.fanins.size());
  if (arity > opt.max_fanins) return std::nullopt;
  const int num_pi = static_cast<int>(impl.inputs().size());
  if (num_pi > opt.max_inputs) return std::nullopt;

  // Interface matching by name.
  std::unordered_map<std::string, std::size_t> spec_in, spec_out;
  for (std::size_t i = 0; i < spec.inputs().size(); ++i)
    spec_in[spec.node(spec.inputs()[i]).name] = i;
  for (std::size_t i = 0; i < spec.outputs().size(); ++i)
    spec_out[spec.node(spec.outputs()[i]).name] = i;
  if (spec_in.size() != impl.inputs().size() ||
      spec_out.size() != impl.outputs().size())
    throw std::invalid_argument("repair: interface mismatch");

  bdd::Manager mgr(num_pi + 1);
  const int t_var = num_pi;

  std::vector<int> impl_vars(static_cast<std::size_t>(num_pi));
  for (int i = 0; i < num_pi; ++i) impl_vars[static_cast<std::size_t>(i)] = i;
  const auto impl_bdds =
      build_with_free_node(impl, mgr, impl_vars, node, t_var);

  std::vector<int> spec_vars(static_cast<std::size_t>(num_pi));
  for (std::size_t i = 0; i < impl.inputs().size(); ++i) {
    const auto it = spec_in.find(impl.node(impl.inputs()[i]).name);
    if (it == spec_in.end())
      throw std::invalid_argument("repair: unmatched input");
    spec_vars[it->second] = static_cast<int>(i);
  }
  const auto spec_bdds = build_with_free_node(spec, mgr, spec_vars,
                                              network::kNoNode, t_var);

  // Match(x, t) over all (name-paired) outputs.
  bdd::Bdd match = mgr.one();
  for (std::size_t o = 0; o < impl.outputs().size(); ++o) {
    const auto it = spec_out.find(impl.node(impl.outputs()[o]).name);
    if (it == spec_out.end())
      throw std::invalid_argument("repair: unmatched output");
    const auto& fi = impl_bdds[static_cast<std::size_t>(impl.outputs()[o])];
    const auto& fs =
        spec_bdds[static_cast<std::size_t>(spec.outputs()[it->second])];
    match = match & !(fi ^ fs);
  }

  const bdd::Bdd e1 = match.cofactor(t_var, true);
  const bdd::Bdd e0 = match.cofactor(t_var, false);
  if (!(e0 | e1).is_one()) return std::nullopt;  // not repairable here

  const bdd::Bdd must1 = e1 & !e0;
  const bdd::Bdd must0 = e0 & !e1;

  // Re-express over the gate's fanins: enumerate fanin patterns; each
  // pattern's PI preimage must not straddle must1 and must0.
  const auto plain = network::build_bdds(impl, mgr);
  Repair rep;
  rep.node = node;
  cubes::Cover on(arity), dc(arity);
  for (std::uint64_t m = 0; m < (1ull << arity); ++m) {
    bdd::Bdd preimage = mgr.one();
    for (int k = 0; k < arity && !preimage.is_zero(); ++k) {
      const auto& fk =
          plain.node[static_cast<std::size_t>(suspect.fanins[static_cast<std::size_t>(k)])];
      preimage = preimage & (((m >> k) & 1) ? fk : !fk);
    }
    cubes::Cube cube(arity);
    for (int k = 0; k < arity; ++k)
      cube.set_code(k, ((m >> k) & 1) ? cubes::Pcn::kPos : cubes::Pcn::kNeg);
    if (preimage.is_zero()) {
      dc.add(std::move(cube));  // unreachable pattern: free choice
      ++rep.dc_patterns;
      continue;
    }
    const bool need1 = !(preimage & must1).is_zero();
    const bool need0 = !(preimage & must0).is_zero();
    if (need1 && need0) return std::nullopt;  // not expressible locally
    if (need1) {
      on.add(std::move(cube));
    } else if (!need0) {
      dc.add(std::move(cube));  // fully flexible pattern
      ++rep.dc_patterns;
    }
  }
  rep.new_cover = espresso::minimize(on, dc);
  return rep;
}

std::vector<Repair> diagnose(const Network& impl, const Network& spec,
                             const RepairOptions& opt) {
  std::vector<Repair> out;
  for (NodeId id = 0; id < impl.num_nodes(); ++id) {
    if (impl.is_dead(id) || impl.node(id).type != NodeType::kLogic) continue;
    if (auto r = try_repair_node(impl, spec, id, opt)) out.push_back(std::move(*r));
  }
  return out;
}

void apply_repair(Network& impl, const Repair& r) {
  impl.set_function(r.node, impl.node(r.node).fanins, r.new_cover);
}

std::optional<Repair> repair_network(Network& impl, const Network& spec,
                                     const RepairOptions& opt) {
  for (NodeId id = 0; id < impl.num_nodes(); ++id) {
    if (impl.is_dead(id) || impl.node(id).type != NodeType::kLogic) continue;
    auto r = try_repair_node(impl, spec, id, opt);
    if (!r) continue;
    apply_repair(impl, *r);
    const auto eq =
        network::check_equivalence(impl, spec, network::EquivalenceMethod::kBdd);
    if (eq.equivalent) return r;
    throw std::logic_error("repair: verification failed after repair");
  }
  return std::nullopt;
}

network::NodeId inject_error(Network& net, util::Rng& rng) {
  std::vector<NodeId> candidates;
  for (NodeId id = 0; id < net.num_nodes(); ++id)
    if (!net.is_dead(id) && net.node(id).type == NodeType::kLogic &&
        !net.node(id).fanins.empty())
      candidates.push_back(id);
  if (candidates.empty())
    throw std::invalid_argument("inject_error: no logic nodes");
  for (int attempt = 0; attempt < 100; ++attempt) {
    const NodeId victim =
        candidates[static_cast<std::size_t>(rng.next_below(candidates.size()))];
    const auto& node = net.node(victim);
    const int arity = static_cast<int>(node.fanins.size());
    auto wrong = gen::random_cover(arity, 1 + static_cast<int>(rng.next_below(3)), rng);
    // Must actually change the local function.
    const auto before = node.cover.to_truth_table();
    if (wrong.to_truth_table() == before) continue;
    net.set_function(victim, node.fanins, std::move(wrong));
    return victim;
  }
  throw std::logic_error("inject_error: could not find a perturbation");
}

}  // namespace l2l::repair
