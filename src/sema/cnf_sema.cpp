// The C-pack: DIMACS CNF semantics without a solver. Duplicate clauses
// (modulo literal order), tautological clauses, pure literals, and
// unit-implied contradictions via occurrence-list BCP -- the facts a
// grader can state about an instance in O(size) before spending any
// solver budget on it.
//
// Hostile-input hygiene: nothing here allocates proportionally to the
// header's claimed variable count; occurrence lists and assignments are
// std::map keyed by the literals actually present in the bytes. A file
// that is not well-formed DIMACS yields NO findings -- well-formedness
// is lint's job (L2L-C0xx), and stacking semantic guesses on top of a
// broken parse would make findings depend on recovery heuristics.

#include <algorithm>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sema/sema.hpp"
#include "util/strings.hpp"

namespace l2l::sema {
namespace {

using util::Severity;

struct Clause {
  std::vector<int> canon;  ///< sorted, deduplicated literals
  int line = 0;            ///< line the clause started on
  bool tautology = false;  ///< contains v and -v
};

/// Tolerant DIMACS read: comments skipped, clauses may span lines, the
/// terminating 0 closes a clause. Returns false (no findings) when the
/// header is missing or any token fails to parse as an integer.
bool parse_dimacs(const std::string& text, std::vector<Clause>& clauses) {
  bool saw_header = false;
  std::vector<int> lits;
  int clause_line = 0;
  int lineno = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line(
        text.data() + pos,
        (eol == std::string::npos ? text.size() : eol) - pos);
    pos = eol == std::string::npos ? text.size() + 1 : eol + 1;
    ++lineno;
    const auto t = util::trim(line);
    if (t.empty() || t[0] == 'c' || t[0] == '%') continue;
    if (t[0] == 'p') {
      const auto tok = util::split(t);
      if (tok.size() != 4 || tok[1] != "cnf" ||
          !util::parse_int(tok[2]).has_value() ||
          !util::parse_int(tok[3]).has_value())
        return false;
      saw_header = true;
      continue;
    }
    for (const auto& w : util::split(t)) {
      const auto v = util::parse_int(w);
      if (!v.has_value()) return false;
      if (*v == 0) {
        Clause c;
        c.line = clause_line;
        c.canon = lits;
        std::sort(c.canon.begin(), c.canon.end());
        c.canon.erase(std::unique(c.canon.begin(), c.canon.end()),
                      c.canon.end());
        for (std::size_t k = 0; k + 1 < c.canon.size(); ++k)
          if (c.canon[k] == -c.canon[k + 1]) c.tautology = true;
        clauses.push_back(std::move(c));
        lits.clear();
        clause_line = 0;
        continue;
      }
      if (lits.empty() && clause_line == 0) clause_line = lineno;
      lits.push_back(*v);
    }
    if (clause_line == 0 && !lits.empty()) clause_line = lineno;
  }
  // An unterminated trailing clause is a lint matter; ignore it here.
  return saw_header;
}

}  // namespace

std::vector<Finding> analyze_cnf(const std::string& text) {
  std::vector<Finding> out;
  std::vector<Clause> clauses;
  if (!parse_dimacs(text, clauses)) return out;
  auto add = [&](const char* rule, Severity sev, int line, std::string msg,
                 std::string hint) {
    out.push_back(
        {rule, sev, line, line > 0 ? 1 : 0, std::move(msg), std::move(hint)});
  };

  // C101 duplicates + C102 tautologies in one sweep over canonical forms.
  std::map<std::vector<int>, int> first_line;
  for (const auto& c : clauses) {
    if (c.tautology)
      add("L2L-C102", Severity::kWarning, c.line,
          "clause contains a variable and its negation (always satisfied)",
          "delete the clause; it constrains nothing");
    const auto [it, fresh] = first_line.emplace(c.canon, c.line);
    if (!fresh)
      add("L2L-C101", Severity::kWarning, c.line,
          "clause duplicates the clause at line " +
              std::to_string(it->second) + " (modulo literal order)",
          "delete the duplicate");
  }

  // C103 pure literals: variables occurring in one phase only. The note
  // severity is deliberate -- ordinary instances have pure literals and
  // must stay gate-clean; the note is a teaching aid, not a defect.
  struct Phases {
    bool pos = false, neg = false;
    int line = 0;  ///< first clause mentioning the variable
  };
  std::map<int, Phases> vars;
  for (const auto& c : clauses)
    for (const int lit : c.canon) {
      auto& p = vars[std::abs(lit)];
      (lit > 0 ? p.pos : p.neg) = true;
      if (p.line == 0) p.line = c.line;
    }
  for (const auto& [var, p] : vars)
    if (p.pos != p.neg)
      add("L2L-C103", Severity::kNote, p.line,
          "variable " + std::to_string(var) + " occurs only " +
              (p.pos ? "positively" : "negatively") + " (pure literal)",
          "assigning it satisfies every clause it touches");

  // C104 unit propagation: occurrence-list BCP in clause-index order.
  // Tautological clauses are pre-satisfied; the first falsified clause
  // (or conflicting unit) is the finding, then we stop -- one exact
  // contradiction beats a cascade of consequences.
  std::map<int, std::vector<int>> occ;  // literal -> clause indices
  for (std::size_t i = 0; i < clauses.size(); ++i)
    for (const int lit : clauses[i].canon)
      occ[lit].push_back(static_cast<int>(i));
  std::map<int, bool> assign;  // var -> value
  std::vector<bool> satisfied(clauses.size(), false);
  std::vector<int> unassigned(clauses.size(), 0);
  std::vector<int> queue;  // clause indices that became unit (FIFO)
  int conflict_line = 0;
  for (std::size_t i = 0; i < clauses.size(); ++i) {
    if (clauses[i].tautology) satisfied[i] = true;
    unassigned[i] = static_cast<int>(clauses[i].canon.size());
    if (satisfied[i]) continue;
    if (unassigned[i] == 0) {
      conflict_line = clauses[i].line;  // the explicit empty clause
      break;
    }
    if (unassigned[i] == 1) queue.push_back(static_cast<int>(i));
  }
  std::size_t head = 0;
  while (conflict_line == 0 && head < queue.size()) {
    const auto ci = static_cast<std::size_t>(queue[head++]);
    if (satisfied[ci]) continue;
    // The forced literal: the sole literal whose variable is unassigned.
    int forced = 0;
    for (const int lit : clauses[ci].canon)
      if (assign.find(std::abs(lit)) == assign.end()) forced = lit;
    if (forced == 0) continue;  // raced with itself; already handled
    assign[std::abs(forced)] = forced > 0;
    for (const int sat_ci : occ[forced])
      satisfied[static_cast<std::size_t>(sat_ci)] = true;
    for (const int hit : occ[-forced]) {
      const auto h = static_cast<std::size_t>(hit);
      if (satisfied[h]) continue;
      if (--unassigned[h] == 0) {
        conflict_line = clauses[h].line;
        break;
      }
      if (unassigned[h] == 1) queue.push_back(hit);
    }
  }
  if (conflict_line != 0)
    add("L2L-C104", Severity::kError, conflict_line,
        "unit propagation alone falsifies this clause (instance is "
        "unsatisfiable)",
        "the contradiction needs no search; recheck the encoding");

  lint::sort_findings(out);
  return out;
}

}  // namespace l2l::sema
