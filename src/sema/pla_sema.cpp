// The P-pack: two-level PLA semantics on the packed-cube kernels.
// Contained/redundant ON-set rows (P101), intersecting rows that give
// the same output both 0 and 1 (P102), and don't-care rows overlapping
// the ON-set (P103). The repo's espresso front-end ignores `.type` and
// reads '0' output entries as OFF-set everywhere (fr semantics), so the
// contradiction rule runs unconditionally.
//
// Hostile-input hygiene: the containment/intersection rules are O(rows²)
// cube-kernel sweeps, so files beyond kRowCap skip them silently (an
// obs counter records the skip) -- a grader must never let a hostile
// row count buy quadratic work. Malformed headers or rows yield no
// findings; well-formedness is lint's job (L2L-P0xx).

#include <string>
#include <utility>
#include <vector>

#include "cubes/cube.hpp"
#include "obs/metrics.hpp"
#include "sema/sema.hpp"
#include "util/strings.hpp"

namespace l2l::sema {
namespace {

using util::Severity;

/// Beyond this many rows the quadratic passes are skipped (silently;
/// "sema.pla.row_cap" counts the skips).
constexpr int kRowCap = 2048;
constexpr int kMaxInputs = 4096;
constexpr int kMaxOutputs = 1024;

struct Row {
  cubes::Cube in;    ///< packed input plane
  std::string out;   ///< raw output plane ('0','1','-','~')
  int line = 0;
};

bool parse_rows(const std::string& text, int& ni, int& no,
                std::vector<std::string>& onames, std::vector<Row>& rows) {
  ni = no = -1;
  int lineno = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view raw(
        text.data() + pos,
        (eol == std::string::npos ? text.size() : eol) - pos);
    pos = eol == std::string::npos ? text.size() + 1 : eol + 1;
    ++lineno;
    const auto t = util::trim(raw);
    if (t.empty() || t[0] == '#') continue;
    if (t[0] == '.') {
      const auto tok = util::split(t);
      if (tok[0] == ".i" && tok.size() == 2) {
        const auto v = util::parse_int(tok[1]);
        if (!v.has_value() || *v < 1 || *v > kMaxInputs) return false;
        ni = *v;
      } else if (tok[0] == ".o" && tok.size() == 2) {
        const auto v = util::parse_int(tok[1]);
        if (!v.has_value() || *v < 1 || *v > kMaxOutputs) return false;
        no = *v;
      } else if (tok[0] == ".ob") {
        onames.assign(tok.begin() + 1, tok.end());
      } else if (tok[0] == ".e") {
        break;
      }
      // .p/.ilb/.type and unknown dots: accepted and ignored, like the
      // espresso front-end.
      continue;
    }
    if (ni < 1 || no < 1) return false;  // rows before the header
    const auto tok = util::split(t);
    if (tok.size() != 2) continue;  // malformed row: lint's finding, not ours
    if (static_cast<int>(tok[0].size()) != ni ||
        static_cast<int>(tok[1].size()) != no)
      continue;
    bool ok = true;
    for (const char c : tok[0])
      if (c != '0' && c != '1' && c != '-') ok = false;
    for (const char c : tok[1])
      if (c != '0' && c != '1' && c != '-' && c != '~') ok = false;
    if (!ok) continue;
    Row r;
    r.in = cubes::Cube::parse(tok[0]);
    r.out = tok[1];
    r.line = lineno;
    rows.push_back(std::move(r));
  }
  return ni >= 1 && no >= 1;
}

}  // namespace

std::vector<Finding> analyze_pla(const std::string& text) {
  std::vector<Finding> out;
  int ni = 0, no = 0;
  std::vector<std::string> onames;
  std::vector<Row> rows;
  if (!parse_rows(text, ni, no, onames, rows)) return out;
  if (static_cast<int>(rows.size()) > kRowCap) {
    obs::count("sema.pla.row_cap");
    return out;
  }
  auto output_label = [&](int j) {
    if (j < static_cast<int>(onames.size()))
      return "'" + onames[static_cast<std::size_t>(j)] + "'";
    return std::string("#") + std::to_string(j);
  };
  auto add = [&](const char* rule, Severity sev, int line, std::string msg,
                 std::string hint) {
    out.push_back(
        {rule, sev, line, line > 0 ? 1 : 0, std::move(msg), std::move(hint)});
  };

  const auto n = rows.size();
  for (std::size_t r = 0; r < n; ++r) {
    // P101: this row's ON-cube is contained in another ON row for the
    // same output (equal cubes flag the later copy; proper containment
    // flags the contained row regardless of order). One finding per row.
    bool flagged101 = false;
    for (int j = 0; j < no && !flagged101; ++j) {
      if (rows[r].out[static_cast<std::size_t>(j)] != '1') continue;
      for (std::size_t s = 0; s < n; ++s) {
        if (s == r || rows[s].out[static_cast<std::size_t>(j)] != '1')
          continue;
        if (!rows[s].in.contains(rows[r].in)) continue;
        if (s > r && rows[s].in == rows[r].in) continue;  // later copy's job
        add("L2L-P101", Severity::kWarning, rows[r].line,
            "ON-set cube is contained in the row at line " +
                std::to_string(rows[s].line) + " for output " +
                output_label(j),
            "delete the redundant row");
        flagged101 = true;
        break;
      }
    }

    // P102 / P103 against strictly earlier rows; one finding per rule
    // per row keeps a pathological all-pairs overlap readable.
    bool flagged102 = false, flagged103 = false;
    for (std::size_t s = 0; s < r && !(flagged102 && flagged103); ++s) {
      if (rows[r].in.intersect(rows[s].in).is_empty()) continue;
      for (int j = 0; j < no; ++j) {
        const char a = rows[s].out[static_cast<std::size_t>(j)];
        const char b = rows[r].out[static_cast<std::size_t>(j)];
        if (!flagged102 && ((a == '1' && b == '0') || (a == '0' && b == '1'))) {
          add("L2L-P102", Severity::kError, rows[r].line,
              "row conflicts with the row at line " +
                  std::to_string(rows[s].line) + ": overlapping cubes give "
                  "output " + output_label(j) + " both 0 and 1",
              "the intersection has no consistent value; split the cubes");
          flagged102 = true;
        }
        const bool dc_vs_on = ((a == '-' || a == '~') && b == '1') ||
                              ((b == '-' || b == '~') && a == '1');
        if (!flagged103 && dc_vs_on) {
          add("L2L-P103", Severity::kNote, rows[r].line,
              "row overlaps the row at line " + std::to_string(rows[s].line) +
                  ": don't-care meets the ON-set for output " +
                  output_label(j),
              "the minimizer resolves the overlap in favor of the ON-set");
          flagged103 = true;
        }
      }
    }
  }

  lint::sort_findings(out);
  return out;
}

}  // namespace l2l::sema
