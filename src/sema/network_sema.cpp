// The N-pack: semantic analysis of the BLIF name graph. Both entry points
// (analyze_blif on raw text, analyze_network on a built Network) lower
// into the same SigGraph so every rule has exactly one implementation;
// the text path additionally carries line anchors.
//
// Algorithms (DESIGN.md "Semantic analysis"):
//   N001  iterative Tarjan SCC over the signal graph -- iterative because
//         the hostile corpus includes a 10k-gate single cycle and a
//         recursive lowlink walk would overflow the stack.
//   N002-N005  dataflow bookkeeping over driver/reader lists plus one
//         reverse reachability sweep from the declared outputs.
//   N006  constant propagation in topological order: substitute known
//         constants via Cover::cofactor, then `empty` = stuck-at-0 and
//         `urp::is_tautology` = stuck-at-1. Both checks are exact (a cube
//         surviving cofactor is satisfiable; URP tautology is semantic),
//         so a stuck-at verdict is a theorem -- the differential suite
//         BDD-verifies every one.
//   N007  structural hashing in topological order: key = canonical
//         sorted cover text + in-order fanin equivalence classes. The
//         hash is deliberately order-sensitive in the fanins (AND(a,b)
//         vs AND(b,a) are NOT merged): commutativity matching is a
//         synthesis optimization, not a design diagnosis.

#include <algorithm>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cubes/urp.hpp"
#include "network/blif.hpp"
#include "sema/sema.hpp"
#include "util/strings.hpp"

namespace l2l::sema {
namespace {

using util::Severity;

/// URP tautology is worst-case exponential in the variable count; past
/// this arity N006 reports "unknown" instead of spending the budget.
constexpr int kTautologyArityCap = 20;
/// complement(off-set) is exponential too; BLIF blocks written with
/// 0-rows wider than this get an unknown cover (N006/N007 skip them).
constexpr int kComplementArityCap = 16;

// ---- signal graph -------------------------------------------------------

struct Sig {
  std::string name;
  int decl_line = 0;  ///< first declaration or first use (1-based, 0 = none)
  bool is_input = false;
  bool is_output = false;
  std::vector<int> drivers;  ///< gate indices driving this signal
  std::vector<int> readers;  ///< gate indices reading this signal
};

struct GateRec {
  std::vector<int> fanins;  ///< sig ids, in written order
  int out = -1;             ///< sig id
  int line = 0;             ///< .names line (0 when built from a Network)
  /// Resolved ON-set cover over the fanin arity; nullopt when the rows
  /// were malformed or the complement cap fired (N006/N007 treat the
  /// gate as an opaque unknown function).
  std::optional<cubes::Cover> on;
};

struct SigGraph {
  std::vector<Sig> sigs;            ///< in first-appearance order
  std::vector<GateRec> gates;       ///< in file order
  std::map<std::string, int> by_name;

  int intern(const std::string& name, int line) {
    auto [it, fresh] = by_name.emplace(name, static_cast<int>(sigs.size()));
    if (fresh) {
      Sig s;
      s.name = name;
      s.decl_line = line;
      sigs.push_back(std::move(s));
    } else if (sigs[static_cast<std::size_t>(it->second)].decl_line == 0) {
      sigs[static_cast<std::size_t>(it->second)].decl_line = line;
    }
    return it->second;
  }
};

/// Resolve a BLIF block's raw rows into an ON-set cover (BLIF 0-rows
/// describe the OFF-set; ON = complement). Malformed rows, mixed output
/// columns, or a too-wide complement yield nullopt -- sema stays silent
/// about well-formedness (lint's job) and just forgoes the function.
std::optional<cubes::Cover> resolve_cover(const network::BlifGate& g) {
  const int arity = static_cast<int>(g.fanins.size());
  cubes::Cover on(arity), off(arity);
  for (const auto& [row, row_line] : g.rows) {
    (void)row_line;
    const auto tok = util::split(row);
    std::string in_plane, out_char;
    if (arity == 0) {
      if (tok.size() != 1) return std::nullopt;
      out_char = tok[0];
    } else {
      if (tok.size() != 2) return std::nullopt;
      in_plane = tok[0];
      out_char = tok[1];
      if (static_cast<int>(in_plane.size()) != arity) return std::nullopt;
      for (const char c : in_plane)
        if (c != '0' && c != '1' && c != '-') return std::nullopt;
    }
    if (out_char != "0" && out_char != "1") return std::nullopt;
    auto& target = out_char == "1" ? on : off;
    target.add(arity == 0 ? cubes::Cube(0) : cubes::Cube::parse(in_plane));
  }
  if (!on.empty() && !off.empty()) return std::nullopt;
  if (!off.empty()) {
    if (arity > kComplementArityCap) return std::nullopt;
    return cubes::complement(off);
  }
  return on;  // possibly empty: the constant-0 block
}

SigGraph build_from_structure(const network::BlifStructure& st) {
  SigGraph g;
  for (const auto& [n, ln] : st.inputs) {
    const int s = g.intern(n, ln);
    g.sigs[static_cast<std::size_t>(s)].is_input = true;
  }
  for (const auto& [n, ln] : st.outputs) {
    const int s = g.intern(n, ln);
    g.sigs[static_cast<std::size_t>(s)].is_output = true;
  }
  for (const auto& bg : st.gates) {
    GateRec rec;
    const int gi = static_cast<int>(g.gates.size());
    for (const auto& f : bg.fanins) {
      const int s = g.intern(f, bg.line);
      rec.fanins.push_back(s);
      g.sigs[static_cast<std::size_t>(s)].readers.push_back(gi);
    }
    rec.out = g.intern(bg.output, bg.line);
    g.sigs[static_cast<std::size_t>(rec.out)].drivers.push_back(gi);
    rec.line = bg.line;
    rec.on = resolve_cover(bg);
    g.gates.push_back(std::move(rec));
  }
  return g;
}

SigGraph build_from_network(const network::Network& net) {
  SigGraph g;
  for (const network::NodeId id : net.inputs()) {
    const int s = g.intern(net.node(id).name, 0);
    g.sigs[static_cast<std::size_t>(s)].is_input = true;
  }
  for (network::NodeId id = 0; id < net.num_nodes(); ++id) {
    const auto& n = net.node(id);
    if (n.type != network::NodeType::kLogic) continue;
    GateRec rec;
    const int gi = static_cast<int>(g.gates.size());
    for (const network::NodeId f : n.fanins) {
      const int s = g.intern(net.node(f).name, 0);
      rec.fanins.push_back(s);
      g.sigs[static_cast<std::size_t>(s)].readers.push_back(gi);
    }
    rec.out = g.intern(n.name, 0);
    g.sigs[static_cast<std::size_t>(rec.out)].drivers.push_back(gi);
    rec.on = n.cover;  // Network covers are ON-sets already
    g.gates.push_back(std::move(rec));
  }
  for (const network::NodeId id : net.outputs())
    g.sigs[static_cast<std::size_t>(g.intern(net.node(id).name, 0))]
        .is_output = true;
  return g;
}

// ---- N001: combinational cycles (iterative Tarjan) ----------------------

/// Tarjan over the signal graph (edge fanin -> output per gate), fully
/// iterative: an explicit DFS frame stack survives the 10k-signal chain
/// in the hostile corpus. Returns the SCC id per signal plus the list of
/// cyclic SCCs (size >= 2, or size 1 with a self-edge), members sorted.
struct SccResult {
  std::vector<int> scc_of;             ///< per signal
  std::vector<std::vector<int>> cyclic;  ///< member sig ids, ascending
};

SccResult find_cyclic_sccs(const SigGraph& g) {
  const int n = static_cast<int>(g.sigs.size());
  // Adjacency: successors of each signal, deduplicated and ordered.
  std::vector<std::vector<int>> succ(static_cast<std::size_t>(n));
  std::vector<bool> self_edge(static_cast<std::size_t>(n), false);
  for (const auto& gate : g.gates)
    for (const int f : gate.fanins) {
      succ[static_cast<std::size_t>(f)].push_back(gate.out);
      if (f == gate.out) self_edge[static_cast<std::size_t>(f)] = true;
    }
  for (auto& v : succ) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }

  SccResult res;
  res.scc_of.assign(static_cast<std::size_t>(n), -1);
  std::vector<int> index(static_cast<std::size_t>(n), -1);
  std::vector<int> lowlink(static_cast<std::size_t>(n), -1);
  std::vector<bool> on_stack(static_cast<std::size_t>(n), false);
  std::vector<int> stack;
  int next_index = 0, next_scc = 0;

  struct Frame {
    int v;
    std::size_t child;  ///< next successor to visit
  };
  std::vector<Frame> frames;

  for (int root = 0; root < n; ++root) {
    if (index[static_cast<std::size_t>(root)] != -1) continue;
    frames.push_back({root, 0});
    while (!frames.empty()) {
      Frame& fr = frames.back();
      const auto v = static_cast<std::size_t>(fr.v);
      if (fr.child == 0) {
        index[v] = lowlink[v] = next_index++;
        stack.push_back(fr.v);
        on_stack[v] = true;
      }
      if (fr.child < succ[v].size()) {
        const int w = succ[v][fr.child++];
        const auto wu = static_cast<std::size_t>(w);
        if (index[wu] == -1) {
          frames.push_back({w, 0});
        } else if (on_stack[wu]) {
          lowlink[v] = std::min(lowlink[v], index[wu]);
        }
        continue;
      }
      // All successors done: close the SCC if v is its root, then fold
      // our lowlink into the parent frame.
      if (lowlink[v] == index[v]) {
        std::vector<int> members;
        while (true) {
          const int w = stack.back();
          stack.pop_back();
          on_stack[static_cast<std::size_t>(w)] = false;
          res.scc_of[static_cast<std::size_t>(w)] = next_scc;
          members.push_back(w);
          if (w == fr.v) break;
        }
        ++next_scc;
        if (members.size() > 1 || self_edge[v]) {
          std::sort(members.begin(), members.end());
          res.cyclic.push_back(std::move(members));
        }
      }
      const int done = fr.v;
      frames.pop_back();
      if (!frames.empty()) {
        const auto p = static_cast<std::size_t>(frames.back().v);
        lowlink[p] = std::min(lowlink[p],
                              lowlink[static_cast<std::size_t>(done)]);
      }
    }
  }
  return res;
}

// ---- repeated-fanin reduction -------------------------------------------

/// A gate's function over its *distinct* fanin signals. `.names a a n`
/// lists the same net twice; positions reading the same signal are never
/// independent, so the cover is rewritten over unique signals by
/// intersecting the PCN codes of tied positions (Pos & Neg = kEmpty
/// drops the cube). This keeps N006 exact -- "a AND NOT a" really is
/// stuck at 0 -- and makes N007 hash the function the student computed,
/// not the spelling.
struct Reduced {
  std::vector<int> fanins;  ///< unique sig ids, first-occurrence order
  cubes::Cover on;          ///< over fanins.size() variables
};

std::optional<Reduced> reduce_gate(const GateRec& gate) {
  if (!gate.on.has_value()) return std::nullopt;
  Reduced r;
  const int arity = static_cast<int>(gate.fanins.size());
  std::vector<int> pos_map(static_cast<std::size_t>(arity), 0);
  for (int i = 0; i < arity; ++i) {
    const int s = gate.fanins[static_cast<std::size_t>(i)];
    int idx = -1;
    for (std::size_t k = 0; k < r.fanins.size(); ++k)
      if (r.fanins[k] == s) idx = static_cast<int>(k);
    if (idx == -1) {
      idx = static_cast<int>(r.fanins.size());
      r.fanins.push_back(s);
    }
    pos_map[static_cast<std::size_t>(i)] = idx;
  }
  if (static_cast<int>(r.fanins.size()) == arity) {
    r.on = *gate.on;
    return r;
  }
  cubes::Cover out(static_cast<int>(r.fanins.size()));
  for (const auto& c : gate.on->cubes()) {
    cubes::Cube nc(static_cast<int>(r.fanins.size()));
    bool dead = false;
    for (int i = 0; i < arity && !dead; ++i) {
      const int u = pos_map[static_cast<std::size_t>(i)];
      const cubes::Pcn merged = nc.code(u) & c.code(i);
      if (merged == cubes::Pcn::kEmpty) {
        dead = true;
        break;
      }
      nc.set_code(u, merged);
    }
    if (!dead) out.add(std::move(nc));
  }
  r.on = std::move(out);
  return r;
}

// ---- the pass -----------------------------------------------------------

NetworkAnalysis analyze_graph(const SigGraph& g) {
  NetworkAnalysis out;
  auto add = [&](const char* rule, Severity sev, int line, std::string msg,
                 std::string hint) {
    out.findings.push_back(
        {rule, sev, line, line > 0 ? 1 : 0, std::move(msg), std::move(hint)});
  };

  const auto scc = find_cyclic_sccs(g);
  std::vector<bool> in_cycle(g.sigs.size(), false);
  for (const auto& members : scc.cyclic) {
    std::vector<std::string> names;
    int anchor = 0;
    for (const int s : members) {
      const auto& sig = g.sigs[static_cast<std::size_t>(s)];
      names.push_back(sig.name);
      in_cycle[static_cast<std::size_t>(s)] = true;
      // Anchor the finding at the earliest member gate the student wrote.
      for (const int gi : sig.drivers) {
        const int ln = g.gates[static_cast<std::size_t>(gi)].line;
        if (ln > 0 && (anchor == 0 || ln < anchor)) anchor = ln;
      }
    }
    std::sort(names.begin(), names.end());
    std::string msg = "combinational cycle through " +
                      std::to_string(names.size()) + " gate(s): ";
    for (std::size_t k = 0; k < names.size(); ++k) {
      if (k > 0) msg += ", ";
      msg += names[k];
    }
    add("L2L-N001", Severity::kError, anchor, std::move(msg),
        "break the loop: a combinational net may not depend on itself");
  }

  // Dataflow bookkeeping: N002 undriven, N003 multiply-driven, N004
  // floating. Signals are visited in first-appearance order; the final
  // sort_findings puts everything into canonical render order anyway.
  std::vector<bool> floating(g.sigs.size(), false);
  for (std::size_t s = 0; s < g.sigs.size(); ++s) {
    const auto& sig = g.sigs[s];
    const bool used = !sig.readers.empty() || sig.is_output;
    if (sig.drivers.empty() && !sig.is_input && used) {
      add("L2L-N002", Severity::kError, sig.decl_line,
          "net '" + sig.name + "' is used but never driven",
          "add a .names block driving it or declare it in .inputs");
    }
    if (!sig.drivers.empty() && sig.is_input) {
      const int ln =
          g.gates[static_cast<std::size_t>(sig.drivers.front())].line;
      add("L2L-N003", Severity::kError, ln,
          ".names output '" + sig.name + "' is also a declared model input",
          "rename the internal net or drop it from .inputs");
    } else if (sig.drivers.size() > 1) {
      const int ln =
          g.gates[static_cast<std::size_t>(sig.drivers[1])].line;
      add("L2L-N003", Severity::kError, ln,
          "net '" + sig.name + "' is driven by " +
              std::to_string(sig.drivers.size()) + " gates",
          "merge the drivers or rename the extra outputs");
    }
    if (sig.drivers.size() == 1 && sig.readers.empty() && !sig.is_output) {
      const int ln =
          g.gates[static_cast<std::size_t>(sig.drivers.front())].line;
      floating[s] = true;
      add("L2L-N004", Severity::kWarning, ln,
          "gate output '" + sig.name + "' floats (never read, not an output)",
          "connect it, declare it in .outputs, or delete the block");
    }
  }

  // N005 dead cone: reverse reachability from the declared outputs. Only
  // meaningful when at least one declared output is actually driven --
  // otherwise everything would be "dead" and the report would drown the
  // real defect (the undriven output, already N002). Floating nets
  // (N004) are trivially outside every cone; one finding is enough.
  bool any_output_driven = false;
  for (const auto& sig : g.sigs)
    if (sig.is_output && !sig.drivers.empty()) any_output_driven = true;
  if (any_output_driven) {
    std::vector<bool> live(g.sigs.size(), false);
    std::vector<int> work;
    for (std::size_t s = 0; s < g.sigs.size(); ++s)
      if (g.sigs[s].is_output) {
        live[s] = true;
        work.push_back(static_cast<int>(s));
      }
    while (!work.empty()) {
      const auto s = static_cast<std::size_t>(work.back());
      work.pop_back();
      for (const int gi : g.sigs[s].drivers)
        for (const int f : g.gates[static_cast<std::size_t>(gi)].fanins) {
          const auto fu = static_cast<std::size_t>(f);
          if (!live[fu]) {
            live[fu] = true;
            work.push_back(f);
          }
        }
    }
    for (const auto& gate : g.gates) {
      const auto s = static_cast<std::size_t>(gate.out);
      if (live[s] || floating[s]) continue;
      add("L2L-N005", Severity::kWarning, gate.line,
          "gate '" + g.sigs[s].name +
              "' does not feed any declared output (dead logic)",
          "delete the dead cone or wire it into an output");
    }
  }

  // N006 constant propagation + N007 structural hashing share one
  // topological sweep over the acyclic portion (Kahn over gate deps;
  // gates inside an SCC never become ready and are skipped, which is
  // exactly the "unknown" verdict they deserve).
  //
  // const_of: per signal, 0 / 1 when provably constant, -1 otherwise.
  // class_of: per signal, the structural equivalence class (N007);
  // fresh ids for inputs and every signal whose function is opaque.
  std::vector<int> const_of(g.sigs.size(), -1);
  std::vector<int> class_of(g.sigs.size(), -1);
  int next_class = 0;
  for (std::size_t s = 0; s < g.sigs.size(); ++s)
    class_of[s] = next_class++;  // refined below for hashed gate outputs

  // Gate readiness: number of fanin signals whose value state is not yet
  // decided. A signal is "decided" once its single driver ran, or
  // immediately when it has no single well-defined driver (input,
  // undriven, multi-driven, in-cycle: all decided as "unknown").
  std::vector<int> gate_of(g.sigs.size(), -1);  ///< sole driver, or -1
  for (std::size_t s = 0; s < g.sigs.size(); ++s) {
    const auto& sig = g.sigs[s];
    if (sig.drivers.size() == 1 && !sig.is_input && !in_cycle[s])
      gate_of[s] = sig.drivers.front();
  }
  std::vector<int> waiting(g.gates.size(), 0);
  std::vector<std::vector<int>> gate_succ(g.sigs.size());
  for (std::size_t gi = 0; gi < g.gates.size(); ++gi)
    for (const int f : g.gates[gi].fanins) {
      if (gate_of[static_cast<std::size_t>(f)] != -1) {
        ++waiting[gi];
        gate_succ[static_cast<std::size_t>(f)].push_back(
            static_cast<int>(gi));
      }
    }
  std::vector<int> ready;
  for (std::size_t gi = 0; gi < g.gates.size(); ++gi)
    if (waiting[gi] == 0 &&
        gate_of[static_cast<std::size_t>(g.gates[gi].out)] ==
            static_cast<int>(gi))
      ready.push_back(static_cast<int>(gi));

  // Structural-hash table: canonical cover text + fanin classes -> the
  // first gate that defined the shape.
  std::map<std::string, std::pair<int, int>> shape;  // key -> (gate, class)

  std::vector<std::optional<Reduced>> red(g.gates.size());
  for (std::size_t gi = 0; gi < g.gates.size(); ++gi)
    red[gi] = reduce_gate(g.gates[gi]);

  std::size_t cursor = 0;
  while (cursor < ready.size()) {
    const auto gi = static_cast<std::size_t>(ready[cursor++]);
    const auto& gate = g.gates[gi];
    const auto out_s = static_cast<std::size_t>(gate.out);
    const int arity = static_cast<int>(gate.fanins.size());

    if (red[gi].has_value()) {
      const Reduced& rg = *red[gi];
      const int red_arity = static_cast<int>(rg.fanins.size());
      // ---- N006: substitute known constants, then decide exactly.
      cubes::Cover cover = rg.on;
      bool all_known = true;
      for (int k = 0; k < red_arity; ++k) {
        const int cv =
            const_of[static_cast<std::size_t>(
                rg.fanins[static_cast<std::size_t>(k)])];
        if (cv == -1) {
          all_known = false;
          continue;
        }
        cover = cover.cofactor(k, cv == 1);
      }
      std::optional<bool> value;
      if (cover.empty()) {
        value = false;  // no satisfiable cube left: constant 0, exactly
      } else if (all_known || cover.num_vars() <= kTautologyArityCap) {
        if (cubes::is_tautology(cover)) value = true;
      }
      if (value.has_value()) {
        const_of[out_s] = *value ? 1 : 0;
        if (arity > 0) {
          const auto& name = g.sigs[out_s].name;
          add("L2L-N006", Severity::kWarning, gate.line,
              "net '" + name + "' is provably stuck at " +
                  (*value ? "1" : "0"),
              "replace the gate with a constant or fix its cover");
          out.stuck_at.emplace_back(name, *value);
        }
      }

      // ---- N007: hash the shape (skip constants; a shared constant is
      // not a design smell the way a duplicated function block is).
      if (red_arity > 0) {
        std::string key = rg.on.sorted().to_string();
        key += '|';
        for (const int f : rg.fanins) {
          key += std::to_string(class_of[static_cast<std::size_t>(f)]);
          key += ',';
        }
        auto [it, fresh] =
            shape.emplace(key, std::pair<int, int>{static_cast<int>(gi),
                                                   class_of[out_s]});
        if (!fresh) {
          const auto& first =
              g.gates[static_cast<std::size_t>(it->second.first)];
          class_of[out_s] = it->second.second;
          add("L2L-N007", Severity::kWarning, gate.line,
              "gate '" + g.sigs[out_s].name +
                  "' is structurally identical to gate '" +
                  g.sigs[static_cast<std::size_t>(first.out)].name + "'",
              "reuse the existing gate and delete this block");
        }
      }
    }

    // Release dependents.
    for (const int succ_gate : gate_succ[out_s])
      if (--waiting[static_cast<std::size_t>(succ_gate)] == 0 &&
          gate_of[static_cast<std::size_t>(
              g.gates[static_cast<std::size_t>(succ_gate)].out)] ==
              succ_gate)
        ready.push_back(succ_gate);
  }

  lint::sort_findings(out.findings);
  std::sort(out.stuck_at.begin(), out.stuck_at.end());
  return out;
}

}  // namespace

NetworkAnalysis analyze_blif(const std::string& text) {
  return analyze_graph(build_from_structure(network::parse_blif_structure(text)));
}

NetworkAnalysis analyze_network(const network::Network& net) {
  return analyze_graph(build_from_network(net));
}

}  // namespace l2l::sema
