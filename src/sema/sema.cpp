// Registry and dispatch for l2l::sema. Format resolution mirrors
// lint_text exactly (flag > extension > content sniff) so `--sema`
// composes with `--format` on every tool; formats without a semantic
// pass produce a clean report rather than an error -- the flag is
// uniform across tools by design.

#include "sema/sema.hpp"

#include "obs/metrics.hpp"
#include "util/parallel.hpp"

namespace l2l::sema {

const std::vector<lint::RuleInfo>& all_rules() {
  using util::Severity;
  static const std::vector<lint::RuleInfo> kRules = {
      // N-pack: BLIF name-graph semantics.
      {"L2L-N001", Severity::kError,
       "combinational cycle (Tarjan SCC), members named"},
      {"L2L-N002", Severity::kError, "net used but never driven"},
      {"L2L-N003", Severity::kError,
       "net driven more than once (or a driven model input)"},
      {"L2L-N004", Severity::kWarning,
       "gate output never read and not a declared output"},
      {"L2L-N005", Severity::kWarning,
       "gate outside every declared output's cone (dead logic)"},
      {"L2L-N006", Severity::kWarning,
       "net provably stuck at a constant (exact const-prop)"},
      {"L2L-N007", Severity::kWarning,
       "gate structurally identical to an earlier gate"},
      // C-pack: DIMACS CNF semantics.
      {"L2L-C101", Severity::kWarning,
       "clause duplicates an earlier clause modulo literal order"},
      {"L2L-C102", Severity::kWarning,
       "tautological clause (contains v and -v)"},
      {"L2L-C103", Severity::kNote, "pure literal (single-phase variable)"},
      {"L2L-C104", Severity::kError,
       "unit propagation alone derives a contradiction"},
      // P-pack: PLA semantics.
      {"L2L-P101", Severity::kWarning,
       "ON-set cube contained in another row (redundant)"},
      {"L2L-P102", Severity::kError,
       "intersecting rows give one output both 0 and 1"},
      {"L2L-P103", Severity::kNote,
       "don't-care output overlaps the ON-set"},
  };
  return kRules;
}

const lint::RuleInfo* rule_info(std::string_view id) {
  for (const auto& r : all_rules())
    if (id == r.id) return &r;
  return nullptr;
}

bool applies(lint::Format format) {
  return format == lint::Format::kBlif || format == lint::Format::kCnf ||
         format == lint::Format::kPla;
}

lint::FileReport analyze_text(const std::string& name,
                              const std::string& text, lint::Format format) {
  lint::FileReport fr;
  fr.file = name;
  lint::Format f = format;
  if (f == lint::Format::kAuto) f = lint::format_from_path(name);
  if (f == lint::Format::kAuto) f = lint::sniff_format(text);
  fr.format = f;
  switch (f) {
    case lint::Format::kBlif: fr.findings = analyze_blif(text).findings; break;
    case lint::Format::kCnf: fr.findings = analyze_cnf(text); break;
    case lint::Format::kPla: fr.findings = analyze_pla(text); break;
    default: break;  // no semantic pass: clean report, format recorded
  }
  lint::sort_findings(fr.findings);
  // Per-rule tallies: commutative counter sums, so concurrent
  // analyze_files lanes stay within the deterministic-export contract.
  if (obs::enabled() && !fr.findings.empty()) {
    obs::count("sema.findings",
               static_cast<std::int64_t>(fr.findings.size()));
    for (const auto& finding : fr.findings)
      obs::count("sema.rule." + finding.rule);
  }
  return fr;
}

lint::Report analyze_files(
    const std::vector<std::pair<std::string, std::string>>& named_texts,
    lint::Format format) {
  obs::count("sema.files", static_cast<std::int64_t>(named_texts.size()));
  lint::Report report;
  report.files.resize(named_texts.size());
  util::parallel_for(0, static_cast<std::int64_t>(named_texts.size()), 1,
                     [&](std::int64_t i) {
                       const auto k = static_cast<std::size_t>(i);
                       report.files[k] = analyze_text(
                           named_texts[k].first, named_texts[k].second,
                           format);
                     });
  return report;
}

std::vector<util::Diagnostic> analyze_submission(const std::string& body) {
  // Portal submissions may lead with a "course <name> <assignment>"
  // header line; the artifact proper starts after it.
  std::string payload = body;
  if (payload.rfind("course ", 0) == 0) {
    const auto nl = payload.find('\n');
    payload = nl == std::string::npos ? std::string() : payload.substr(nl + 1);
  }
  const auto fr = analyze_text("<submission>", payload);
  return lint::to_diagnostics(fr.findings);
}

}  // namespace l2l::sema
