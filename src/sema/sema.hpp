#pragma once
// l2l::sema -- semantic static analysis over *parsed* artifacts, the layer
// between l2l::lint (textual rule packs) and the engines. Lint answers
// "is this file well-formed?"; sema answers "does this design mean
// anything?" -- the classic autograder diagnoses the MOOC forum asked for:
// combinational loops, undriven and multiply-driven nets, dead logic,
// nets provably stuck at a constant, structurally duplicate gates,
// redundant or contradictory PLA cubes, and CNF defects (duplicate /
// tautological clauses, pure literals, unit-implied contradictions)
// detected without spending a solver budget.
//
// Findings reuse the lint::Finding shape and the lint report renderers,
// but live in their own registry with their own stable ID ranges so the
// two layers version independently:
//
//   L2L-N0xx  network semantics (BLIF name graph)
//   L2L-C1xx  DIMACS CNF semantics
//   L2L-P1xx  PLA semantics
//
// Determinism contract (same as lint and the engines): passes never
// throw, never allocate proportionally to a hostile header, and a sema
// Report renders byte-identically at any L2L_THREADS value. Per-rule obs
// counters use the "sema.rule.<ID>" namespace.
//
// The network pass runs on network::BlifStructure -- the name-level graph
// BEFORE salvage -- because network::Network is acyclic by construction
// and cannot even represent the defects this pass exists to explain.
// Algorithm notes live in DESIGN.md "Semantic analysis".

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "lint/lint.hpp"
#include "network/network.hpp"
#include "util/status.hpp"

namespace l2l::sema {

using lint::Finding;

// ---- rule registry ------------------------------------------------------

/// Every sema rule, grouped by pack (N, C, P) with IDs ascending inside
/// each group -- the `l2l-lint --sema --rules` print order. Reuses the
/// lint::RuleInfo shape; deliberately NOT part of lint::all_rules() (the
/// two registries version independently and lint's tests pin its table).
const std::vector<lint::RuleInfo>& all_rules();

/// Lookup by ID; nullptr when unknown.
const lint::RuleInfo* rule_info(std::string_view id);

// ---- network pass -------------------------------------------------------

/// Network-pass result. `stuck_at` carries the L2L-N006 verdicts in a
/// machine-checkable form so the differential suite can BDD-verify every
/// claimed constant (sema must never cry wolf).
struct NetworkAnalysis {
  std::vector<Finding> findings;  ///< sorted (lint::sort_findings order)
  /// (net name, constant value) per stuck-at verdict, in name order.
  std::vector<std::pair<std::string, bool>> stuck_at;
};

/// Analyze BLIF text: structural parse (network::parse_blif_structure),
/// then the N-pack over the name graph. Never throws.
NetworkAnalysis analyze_blif(const std::string& text);

/// Analyze an already-built network (no line anchors; findings carry
/// line 0). Shares every rule with analyze_blif -- the differential suite
/// runs this form directly on gen:: networks.
NetworkAnalysis analyze_network(const network::Network& net);

// ---- CNF / PLA passes ---------------------------------------------------

/// DIMACS CNF semantics: duplicate clauses modulo literal order,
/// tautological clauses, pure literals, and unit-propagation
/// contradictions -- all without constructing a solver. Malformed files
/// yield no findings (that is lint's job). Never throws.
std::vector<Finding> analyze_cnf(const std::string& text);

/// PLA semantics via the packed-cube kernels: contained/redundant cubes,
/// contradictory intersecting rows, and ON/DC overlaps, per output plane.
/// Malformed headers or rows are skipped silently (lint's job). Never
/// throws.
std::vector<Finding> analyze_pla(const std::string& text);

// ---- dispatch -----------------------------------------------------------

/// True when a sema pass exists for the format (BLIF, CNF, PLA). The
/// other lint formats are accepted by the dispatch and yield an empty
/// report -- the `--sema` flag is uniform across tools by design.
bool applies(lint::Format format);

/// Analyze one in-memory artifact. Resolves the format exactly like
/// lint_text (flag > extension > content sniff), runs the pass, sorts
/// the findings, and bumps the per-rule obs counters
/// ("sema.rule.<ID>"). Formats without a pass produce a clean report.
/// Never throws.
lint::FileReport analyze_text(const std::string& name,
                              const std::string& text,
                              lint::Format format = lint::Format::kAuto);

/// Analyze many artifacts across the worker pool (one task per file).
/// Result order matches input order; byte-identical at any L2L_THREADS.
lint::Report analyze_files(
    const std::vector<std::pair<std::string, std::string>>& named_texts,
    lint::Format format = lint::Format::kAuto);

/// Queue/service adapter: sniff the submission body (skipping the portal
/// "course ..." header line when present) and return the findings as
/// grader-facing diagnostics -- the shape mooc::QueueOptions::lint wants.
/// Error-severity findings make the queue reject pre-grade; warnings and
/// notes ride along in the outcome. Never throws.
std::vector<util::Diagnostic> analyze_submission(const std::string& body);

}  // namespace l2l::sema
