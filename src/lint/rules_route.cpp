// Routing rule packs: the problem file (L2L-Rxxx) and the solution file
// (L2L-Sxxx). The problem scanner is its own lenient pass (the strict
// parser throws on the first defect; lint wants all of them with line
// anchors). The solution pack reuses route::parse_solution_lenient for
// structure and layers the geometric rules on top when the problem is
// available.

#include <map>
#include <set>
#include <sstream>

#include "lint/lint.hpp"
#include "route/solution.hpp"
#include "util/strings.hpp"

namespace l2l::lint {
namespace {

std::string excerpt(std::string_view t) {
  constexpr std::size_t kMax = 60;
  if (t.size() <= kMax) return std::string(t);
  return std::string(t.substr(0, kMax)) + "...";
}

/// "(x y l)" -> point; nullopt on any defect.
std::optional<gen::GridPoint> parse_point(const std::string& t) {
  const auto tok = util::split(t, "() \t");
  if (tok.size() != 3) return std::nullopt;
  const auto x = util::parse_int(tok[0]);
  const auto y = util::parse_int(tok[1]);
  const auto l = util::parse_int(tok[2]);
  if (!x || !y || !l) return std::nullopt;
  return gen::GridPoint{*x, *y, *l};
}

}  // namespace

std::vector<Finding> lint_route_problem(const std::string& text) {
  std::vector<Finding> out;
  auto emit = [&](const char* rule, util::Severity sev, int line,
                  std::string msg, std::string hint = {}) {
    out.push_back({rule, sev, line, line > 0 ? 1 : 0, std::move(msg),
                   std::move(hint)});
  };

  std::istringstream in(text);
  std::string raw;
  int lineno = 0;
  auto next_line = [&]() -> std::optional<std::string> {
    while (std::getline(in, raw)) {
      ++lineno;
      const auto t = util::trim(raw);
      if (!t.empty()) return std::string(t);
    }
    return std::nullopt;
  };

  // Header + caps (mirrors route::parse_problem's hostile-header guards).
  constexpr int kMaxSide = 1 << 16;
  constexpr int kMaxLayers = 64;
  constexpr long long kMaxCells = 1LL << 26;
  gen::RoutingProblem p;
  bool grid_ok = false;
  {
    const auto l = next_line();
    if (!l) {
      emit("L2L-R001", util::Severity::kError, 0, "empty problem file");
      return out;
    }
    const auto tok = util::split(*l);
    std::optional<int> w, h, nl;
    if (tok.size() == 4 && tok[0] == "grid") {
      w = util::parse_int(tok[1]);
      h = util::parse_int(tok[2]);
      nl = util::parse_int(tok[3]);
    }
    if (!w || !h || !nl) {
      emit("L2L-R001", util::Severity::kError, lineno,
           "missing or malformed grid header '" + excerpt(*l) + "'",
           "write 'grid <width> <height> <layers>'");
      sort_findings(out);
      return out;  // everything below needs the grid
    }
    if (*w < 1 || *h < 1 || *w > kMaxSide || *h > kMaxSide ||
        *nl < 1 || *nl > kMaxLayers ||
        static_cast<long long>(*w) * *h * *nl > kMaxCells) {
      emit("L2L-R002", util::Severity::kError, lineno,
           util::format("grid %d x %d x %d outside the sane range",
                        *w, *h, *nl),
           util::format("sides <= %d, layers <= %d, cells <= %lld",
                        kMaxSide, kMaxLayers, kMaxCells));
    } else {
      p.width = *w;
      p.height = *h;
      p.num_layers = *nl;
      p.blocked.assign(
          static_cast<std::size_t>(p.num_layers),
          std::vector<bool>(static_cast<std::size_t>(p.width) *
                                static_cast<std::size_t>(p.height),
                            false));
      grid_ok = true;
    }
  }

  // Obstacles: off-grid ones are R003-adjacent but structural -- report
  // as R001 (the strict parser rejects them); in-bounds ones fill the
  // blocked map the pin rules check against.
  {
    const auto l = next_line();
    const auto tok = l ? util::split(*l) : std::vector<std::string>{};
    std::optional<int> count;
    if (tok.size() == 2 && tok[0] == "obstacles")
      count = util::parse_int(tok[1]);
    if (!count || *count < 0) {
      emit("L2L-R001", util::Severity::kError, l ? lineno : 0,
           "missing or malformed obstacles header",
           "write 'obstacles <count>' after the grid line");
      sort_findings(out);
      return out;
    }
    for (int k = 0; k < *count; ++k) {
      const auto pl = next_line();
      if (!pl) {
        emit("L2L-R001", util::Severity::kError, lineno,
             util::format("file ends after %d of %d obstacle(s)", k,
                          *count));
        sort_findings(out);
        return out;
      }
      const auto g = parse_point(*pl);
      if (!g) {
        emit("L2L-R001", util::Severity::kError, lineno,
             "bad obstacle point '" + excerpt(*pl) + "'",
             "write '(x y layer)'");
        continue;
      }
      if (!grid_ok) continue;
      if (!p.in_bounds(*g)) {
        emit("L2L-R001", util::Severity::kError, lineno,
             util::format("obstacle (%d %d %d) off-grid", g->x, g->y,
                          g->layer));
        continue;
      }
      p.blocked[static_cast<std::size_t>(g->layer)]
               [static_cast<std::size_t>(g->y) *
                    static_cast<std::size_t>(p.width) +
                static_cast<std::size_t>(g->x)] = true;
    }
  }

  // Nets.
  {
    const auto l = next_line();
    const auto tok = l ? util::split(*l) : std::vector<std::string>{};
    std::optional<int> count;
    if (tok.size() == 2 && tok[0] == "nets") count = util::parse_int(tok[1]);
    if (!count || *count < 0) {
      emit("L2L-R001", util::Severity::kError, l ? lineno : 0,
           "missing or malformed nets header",
           "write 'nets <count>' after the obstacle list");
      sort_findings(out);
      return out;
    }
    std::map<int, int> net_line;  // id -> first line
    for (int k = 0; k < *count; ++k) {
      const auto hl = next_line();
      if (!hl) {
        emit("L2L-R001", util::Severity::kError, lineno,
             util::format("file ends after %d of %d net(s)", k, *count));
        break;
      }
      const auto htok = util::split(*hl);
      std::optional<int> id, pins;
      if (htok.size() == 3 && htok[0] == "net") {
        id = util::parse_int(htok[1]);
        pins = util::parse_int(htok[2]);
      }
      if (!id || !pins || *pins < 0) {
        emit("L2L-R001", util::Severity::kError, lineno,
             "bad net header '" + excerpt(*hl) + "'",
             "write 'net <id> <pin-count>'");
        break;  // pin lines are now unanchored; stop instead of cascading
      }
      const int net_header_line = lineno;
      const auto [it, fresh] = net_line.try_emplace(*id, net_header_line);
      if (!fresh)
        emit("L2L-R005", util::Severity::kError, net_header_line,
             util::format("duplicate net id %d (first on line %d)", *id,
                          it->second));
      std::set<gen::GridPoint> distinct;
      int parsed_pins = 0;
      for (int q = 0; q < *pins; ++q) {
        const auto pl = next_line();
        if (!pl) {
          emit("L2L-R001", util::Severity::kError, lineno,
               util::format("file ends after %d of %d pin(s) of net %d", q,
                            *pins, *id));
          break;
        }
        const auto g = parse_point(*pl);
        if (!g) {
          emit("L2L-R001", util::Severity::kError, lineno,
               "bad pin point '" + excerpt(*pl) + "'");
          continue;
        }
        ++parsed_pins;
        if (grid_ok && !p.in_bounds(*g)) {
          emit("L2L-R003", util::Severity::kError, lineno,
               util::format("pin (%d %d %d) of net %d off-grid", g->x, g->y,
                            g->layer, *id));
          continue;
        }
        if (grid_ok && p.is_blocked(*g))
          emit("L2L-R004", util::Severity::kError, lineno,
               util::format("pin (%d %d %d) of net %d on a blocked cell",
                            g->x, g->y, g->layer, *id),
               "a pin under an obstacle can never be reached");
        if (!distinct.insert(*g).second)
          emit("L2L-R006", util::Severity::kWarning, lineno,
               util::format("net %d repeats pin (%d %d %d)", *id, g->x,
                            g->y, g->layer));
      }
      if (parsed_pins > 0 && distinct.size() < 2)
        emit("L2L-R006", util::Severity::kWarning, net_header_line,
             util::format("net %d has %d distinct pin(s); routing needs 2+",
                          *id, static_cast<int>(distinct.size())));
    }
  }

  sort_findings(out);
  return out;
}

std::vector<Finding> lint_route_solution(const std::string& text,
                                         const gen::RoutingProblem* problem) {
  std::vector<Finding> out;
  auto emit = [&](const char* rule, util::Severity sev, int line,
                  std::string msg, std::string hint = {}) {
    out.push_back({rule, sev, line, line > 0 ? 1 : 0, std::move(msg),
                   std::move(hint)});
  };

  // Structure: the lenient grader parse already anchors every malformed
  // region; reclassify its findings under stable rule IDs.
  const auto parsed = route::parse_solution_lenient(text);
  for (const auto& d : parsed.diagnostics) {
    const bool count_drift =
        d.message.find("net count mismatch") != std::string::npos;
    out.push_back({count_drift ? "L2L-S006" : "L2L-S001",
                   count_drift ? util::Severity::kWarning
                               : util::Severity::kError,
                   d.line, d.column, d.message, ""});
  }

  // Semantics over the salvaged nets. Line anchors are gone after the
  // parse (the grader's structures carry none), so these findings are
  // net-anchored instead: line 0 with the net id in the message.
  std::map<int, int> seen_ids;  // net id -> occurrences
  for (const auto& net : parsed.solution.nets) {
    if (++seen_ids[net.net_id] == 2)
      emit("L2L-S002", util::Severity::kError, 0,
           util::format("net id %d appears more than once", net.net_id),
           "one block per net; merge the cell lists");
    if (!problem) continue;
    bool known = false;
    for (const auto& pnet : problem->nets) known = known || pnet.id == net.net_id;
    if (!known)
      emit("L2L-S005", util::Severity::kWarning, 0,
           util::format("net id %d is not part of the problem", net.net_id));
    int off_grid = 0, on_obstacle = 0;
    gen::GridPoint first_off{}, first_on{};
    for (const auto& c : net.cells) {
      if (!problem->in_bounds(c)) {
        if (off_grid++ == 0) first_off = c;
      } else if (problem->is_blocked(c)) {
        if (on_obstacle++ == 0) first_on = c;
      }
    }
    if (off_grid > 0)
      emit("L2L-S003", util::Severity::kError, 0,
           util::format("net %d: %d cell(s) off-grid (first: (%d %d %d))",
                        net.net_id, off_grid, first_off.x, first_off.y,
                        first_off.layer));
    if (on_obstacle > 0)
      emit("L2L-S004", util::Severity::kError, 0,
           util::format(
               "net %d: %d cell(s) on obstacles (first: (%d %d %d))",
               net.net_id, on_obstacle, first_on.x, first_on.y,
               first_on.layer));
  }

  sort_findings(out);
  return out;
}

}  // namespace l2l::lint
