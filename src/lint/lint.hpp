#pragma once
// l2l::lint -- static design-rule analysis for every artifact the flow
// consumes, run *before* any engine touches the bytes.
//
// The MOOC graded planet-scale uploads unattended; the feedback students
// valued most was "your file is malformed at line N, here is why" -- and
// producing it must cost milliseconds, not an engine budget. Each input
// format (BLIF, PLA, DIMACS CNF, placement text, routing problem and
// solution, the kbdd/axb tool inputs) gets a rule pack: pure functions
// from text to a list of Findings, each carrying a stable rule ID
// ("L2L-B001"-style), a severity, a 1-based line/column anchor, and an
// optional fix-it hint. Rule packs never throw, never allocate
// proportionally to a hostile header, and never execute any engine.
//
// Determinism contract (same as the rest of the repo): a lint Report
// renders byte-identically at any L2L_THREADS value. Files are linted
// concurrently via parallel_for, but each file's findings depend only on
// its bytes, results are kept in input order, and findings within a file
// are sorted by (line, column, rule, message) before rendering.
//
// Rule ID scheme (DESIGN.md "Static analysis & lint"):
//   L2L-Bxxx  BLIF / network        L2L-Pxxx  PLA
//   L2L-Cxxx  DIMACS CNF            L2L-Lxxx  placement text
//   L2L-Rxxx  routing problem       L2L-Sxxx  routing solution
//   L2L-Kxxx  kbdd script           L2L-Axxx  axb linear system

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "gen/routing_gen.hpp"
#include "util/status.hpp"

namespace l2l::lint {

// ---- findings -----------------------------------------------------------

struct Finding {
  std::string rule;  ///< stable ID, e.g. "L2L-B003"
  util::Severity severity = util::Severity::kError;
  int line = 0;    ///< 1-based; 0 = not attributable to a position
  int column = 0;  ///< 1-based; 0 = unknown
  std::string message;
  std::string hint;  ///< optional fix-it suggestion ("write ... instead")

  /// "line 3, col 1: error: [L2L-B003] undriven net 'q' (hint: ...)".
  std::string to_string() const;

  /// Downgrade to the grader-facing Diagnostic type (rule ID folded into
  /// the message so student reports keep the stable identifier).
  util::Diagnostic to_diagnostic() const;
};

/// Sort by (line, column, rule, message, severity): the canonical render
/// order. Stable across thread counts by construction.
void sort_findings(std::vector<Finding>& findings);

/// "error" / "warning" / "note" -- the render spelling shared by the text
/// and JSON exporters (and by l2l::sema's registry print).
const char* severity_name(util::Severity s);

std::vector<util::Diagnostic> to_diagnostics(
    const std::vector<Finding>& findings);

// ---- rule registry ------------------------------------------------------

/// One registered rule: the stable ID, its default severity, and a
/// one-line summary (rendered by `l2l-lint --rules` and DESIGN.md).
struct RuleInfo {
  const char* id;
  util::Severity severity;
  const char* summary;
};

/// Every rule in every pack, grouped by pack (B, P, C, L, R, S, K, A)
/// with IDs ascending inside each group -- the `--rules` print order.
const std::vector<RuleInfo>& all_rules();

/// Lookup by ID; nullptr when unknown.
const RuleInfo* rule_info(std::string_view id);

// ---- formats ------------------------------------------------------------

enum class Format {
  kAuto,           ///< resolve via filename extension, then content sniff
  kBlif,           ///< .blif  -- combinational BLIF networks
  kPla,            ///< .pla   -- two-level PLA truth tables
  kCnf,            ///< .cnf   -- DIMACS CNF
  kPlacement,      ///< .place/.txt -- "cell <id> <col> <row>" text
  kRouteProblem,   ///< .problem -- routing grid/obstacles/nets
  kRouteSolution,  ///< .sol   -- routed net cell lists
  kKbddScript,     ///< .kbdd  -- kbdd_lite calculator scripts
  kAxb,            ///< .axb   -- dense linear-system text
  kUnknown,        ///< unrecognized: lint emits a file-level note
};

const char* format_name(Format f);

/// Parse a --format flag value ("blif", "pla", "cnf", "place",
/// "route-problem", "route-solution", "kbdd", "axb").
std::optional<Format> parse_format_name(std::string_view name);

/// Resolve by filename extension; kAuto when the extension says nothing.
Format format_from_path(std::string_view path);

/// Resolve by content (first meaningful line); kUnknown when nothing
/// matches. Never throws, reads O(1) lines.
Format sniff_format(const std::string& text);

// ---- rule packs ---------------------------------------------------------
// Each pack is a pure function: text in, sorted findings out. Packs that
// check against assignment parameters take them explicitly; unknown
// parameters (negative / nullptr) skip the dependent rules so a
// standalone file can still be linted.

std::vector<Finding> lint_blif(const std::string& text);
std::vector<Finding> lint_pla(const std::string& text);
std::vector<Finding> lint_cnf(const std::string& text);

/// Assignment parameters for the placement pack. Unknown values (-1)
/// skip the range/completeness rules.
struct PlacementSpec {
  int num_cells = -1;  ///< expected cell count
  int cols = -1;       ///< sites per row (x range)
  int rows = -1;       ///< row count (y range)
};

std::vector<Finding> lint_placement(const std::string& text,
                                    const PlacementSpec& spec = {});

std::vector<Finding> lint_route_problem(const std::string& text);

/// Solution lint; with a problem the geometric rules (bounds, obstacles,
/// net-ID membership) run too.
std::vector<Finding> lint_route_solution(
    const std::string& text, const gen::RoutingProblem* problem = nullptr);

std::vector<Finding> lint_kbdd_script(const std::string& text);
std::vector<Finding> lint_axb(const std::string& text);

// ---- reports ------------------------------------------------------------

struct FileReport {
  std::string file;  ///< display name ("<stdin>" for piped input)
  Format format = Format::kUnknown;
  std::vector<Finding> findings;

  int errors() const;
  int warnings() const;
  int notes() const;
  bool clean() const { return errors() == 0; }
};

struct Report {
  std::vector<FileReport> files;  ///< in input order

  int errors() const;
  int warnings() const;
  int notes() const;
  /// Gate: no errors, and no warnings either when `werror` is set.
  bool pass(bool werror = false) const;

  /// clang-style text: one line per finding plus a per-run summary line.
  std::string to_text() const;
  /// Machine-readable export (stable key order, findings sorted).
  std::string to_json() const;
};

/// Options threaded through lint_text / lint_files.
struct LintOptions {
  Format format = Format::kAuto;  ///< force a format (kAuto = resolve)
  PlacementSpec placement;
  const gen::RoutingProblem* route_problem = nullptr;
};

/// Lint one in-memory artifact. Resolves the format (flag > extension >
/// content sniff), runs the pack, sorts the findings, and bumps the
/// per-rule obs counters ("lint.rule.<ID>"). Never throws.
FileReport lint_text(const std::string& name, const std::string& text,
                     const LintOptions& opt = {});

/// Lint many artifacts across the worker pool (one task per file).
/// Result order matches input order; byte-identical at any L2L_THREADS.
Report lint_files(const std::vector<std::pair<std::string, std::string>>&
                      named_texts,
                  const LintOptions& opt = {});

}  // namespace l2l::lint
