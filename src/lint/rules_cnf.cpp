// DIMACS CNF rule pack (L2L-Cxxx): header shape, literal range, count
// drift, and the clause-hygiene warnings SAT graders care about
// (duplicates, tautologies, empty clauses, unused variables). Clause
// comparison uses sorted literal keys in a std::map -- deterministic, no
// hashing, no allocation proportional to a hostile header.

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "lint/lint.hpp"
#include "util/strings.hpp"

namespace l2l::lint {
namespace {

std::string excerpt(std::string_view t) {
  constexpr std::size_t kMax = 60;
  if (t.size() <= kMax) return std::string(t);
  return std::string(t.substr(0, kMax)) + "...";
}

}  // namespace

std::vector<Finding> lint_cnf(const std::string& text) {
  std::vector<Finding> out;
  auto emit = [&](const char* rule, util::Severity sev, int line,
                  std::string msg, std::string hint = {}) {
    out.push_back({rule, sev, line, line > 0 ? 1 : 0, std::move(msg),
                   std::move(hint)});
  };

  // Same cap as the parser: the header sizes solver allocations.
  constexpr int kMaxVars = 1 << 24;
  int num_vars = -1;
  int declared_clauses = -1;
  int num_clauses = 0;
  bool have_header = false;
  int clause_start_line = 0;
  std::vector<int> current;            // literals of the open clause
  std::map<std::vector<int>, int> seen;  // sorted clause -> first line
  std::set<int> used_vars;
  // Cap the per-variable bookkeeping against hostile headers: the
  // unused-variable rule degrades to a note beyond the cap.
  constexpr int kMaxTrackedVars = 1 << 20;

  auto close_clause = [&](int line) {
    ++num_clauses;
    if (current.empty()) {
      emit("L2L-C004", util::Severity::kWarning, line,
           "empty clause: the formula is trivially unsatisfiable");
      return;
    }
    std::vector<int> key = current;
    std::sort(key.begin(), key.end());
    bool dup_lit = false, tautology = false;
    for (std::size_t k = 0; k + 1 < key.size(); ++k) {
      if (key[k] == key[k + 1]) dup_lit = true;
      if (key[k] == -key[k + 1]) tautology = true;
    }
    if (dup_lit)
      emit("L2L-C007", util::Severity::kWarning, line,
           "duplicate literal inside the clause");
    if (tautology)
      emit("L2L-C006", util::Severity::kWarning, line,
           "tautological clause (contains v and -v)",
           "the clause is always true; drop it");
    const auto [it, fresh] = seen.try_emplace(std::move(key), line);
    if (!fresh)
      emit("L2L-C005", util::Severity::kWarning, line,
           "duplicate clause (first on line " + std::to_string(it->second) +
               ")");
    current.clear();
  };

  std::istringstream in(text);
  std::string raw;
  int lineno = 0, last_content_line = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const auto t = util::trim(raw);
    if (t.empty() || t[0] == 'c') continue;
    last_content_line = lineno;
    if (t[0] == 'p') {
      const auto tok = util::split(t);
      if (have_header) {
        emit("L2L-C001", util::Severity::kError, lineno,
             "second problem line");
        continue;
      }
      if (tok.size() != 4 || tok[1] != "cnf") {
        emit("L2L-C001", util::Severity::kError, lineno,
             "malformed problem line '" + excerpt(t) + "'",
             "write 'p cnf <vars> <clauses>'");
        have_header = true;  // keep linting the body
        continue;
      }
      const auto nv = util::parse_int(tok[2]);
      const auto nc = util::parse_int(tok[3]);
      if (!nv || !nc || *nv < 0 || *nc < 0) {
        emit("L2L-C001", util::Severity::kError, lineno,
             "bad counts in problem line '" + excerpt(t) + "'");
      } else if (*nv > kMaxVars) {
        emit("L2L-C001", util::Severity::kError, lineno,
             util::format("variable count %d above the %d cap", *nv,
                          kMaxVars),
             "the grading service rejects formulas this large");
      } else {
        num_vars = *nv;
        declared_clauses = *nc;
      }
      have_header = true;
      continue;
    }
    if (!have_header) {
      emit("L2L-C001", util::Severity::kError, lineno,
           "clause before the problem line",
           "the 'p cnf ...' header must come first");
      have_header = true;  // report once, keep scanning
    }
    if (current.empty()) clause_start_line = lineno;
    for (const auto& tok : util::split(t)) {
      const auto lit = util::parse_int(tok);
      if (!lit) {
        emit("L2L-C002", util::Severity::kError, lineno,
             "bad literal '" + excerpt(tok) + "'");
        continue;
      }
      if (*lit == 0) {
        close_clause(clause_start_line);
        clause_start_line = lineno;
        continue;
      }
      const long long var = *lit > 0 ? *lit : -static_cast<long long>(*lit);
      if (num_vars >= 0 && var > num_vars) {
        emit("L2L-C002", util::Severity::kError, lineno,
             util::format("literal %d outside the declared %d variable(s)",
                          *lit, num_vars));
        continue;
      }
      if (var <= kMaxTrackedVars) used_vars.insert(static_cast<int>(var));
      current.push_back(*lit);
    }
  }
  if (!current.empty()) {
    emit("L2L-C003", util::Severity::kError, clause_start_line,
         "last clause is missing its terminating 0");
    close_clause(clause_start_line);
    --num_clauses;  // the unterminated tail is not a counted clause
  }
  if (!have_header)
    emit("L2L-C001", util::Severity::kError, 0, "missing problem line",
         "start the file with 'p cnf <vars> <clauses>'");
  if (declared_clauses >= 0 && declared_clauses != num_clauses)
    emit("L2L-C003", util::Severity::kError, last_content_line,
         util::format("header declares %d clause(s) but the body has %d",
                      declared_clauses, num_clauses),
         "fix the 'p cnf' clause count");
  if (num_vars >= 0 && num_vars <= kMaxTrackedVars) {
    int unused = 0, first_unused = 0;
    for (int v = 1; v <= num_vars; ++v)
      if (!used_vars.count(v)) {
        ++unused;
        if (first_unused == 0) first_unused = v;
      }
    if (unused > 0)
      emit("L2L-C008", util::Severity::kWarning, 0,
           util::format("%d declared variable(s) never appear (first: %d)",
                        unused, first_unused),
           "shrink the variable count or reference them");
  }

  sort_findings(out);
  return out;
}

}  // namespace l2l::lint
