#include "lint/lint.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"

namespace l2l::lint {

const char* severity_name(util::Severity s) {
  switch (s) {
    case util::Severity::kError: return "error";
    case util::Severity::kWarning: return "warning";
    case util::Severity::kNote: return "note";
  }
  return "error";
}

namespace {

/// JSON string escaping for hostile bytes embedded in messages (control
/// characters, quotes, backslashes; non-ASCII passes through untouched --
/// consumers treat the payload as opaque UTF-8-ish bytes).
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          out += util::format("\\u%04x", c);
        else
          out += c;
    }
  }
  return out;
}

}  // namespace

// ---- findings -----------------------------------------------------------

std::string Finding::to_string() const {
  std::string out;
  if (line > 0) {
    out += util::format("line %d", line);
    if (column > 0) out += util::format(", col %d", column);
    out += ": ";
  }
  out += severity_name(severity);
  out += ": [" + rule + "] " + message;
  if (!hint.empty()) out += " (hint: " + hint + ")";
  return out;
}

util::Diagnostic Finding::to_diagnostic() const {
  util::Diagnostic d;
  d.severity = severity;
  d.line = line;
  d.column = column;
  d.message = "[" + rule + "] " + message;
  if (!hint.empty()) d.message += " (hint: " + hint + ")";
  return d;
}

void sort_findings(std::vector<Finding>& findings) {
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.line != b.line) return a.line < b.line;
                     if (a.column != b.column) return a.column < b.column;
                     if (a.rule != b.rule) return a.rule < b.rule;
                     return a.message < b.message;
                   });
}

std::vector<util::Diagnostic> to_diagnostics(
    const std::vector<Finding>& findings) {
  std::vector<util::Diagnostic> out;
  out.reserve(findings.size());
  for (const auto& f : findings) out.push_back(f.to_diagnostic());
  return out;
}

// ---- rule registry ------------------------------------------------------

const std::vector<RuleInfo>& all_rules() {
  using S = util::Severity;
  static const std::vector<RuleInfo> kRules = {
      // BLIF / network
      {"L2L-B001", S::kError, "unparsable BLIF structure (directive or cube out of place)"},
      {"L2L-B002", S::kError, "unsupported BLIF feature (.latch or unknown directive)"},
      {"L2L-B003", S::kError, "undriven net (used or output-declared, never driven)"},
      {"L2L-B004", S::kError, "multiply-driven net (more than one driver)"},
      {"L2L-B005", S::kError, "combinational cycle through .names blocks"},
      {"L2L-B006", S::kWarning, "dangling internal node (drives nothing, not an output)"},
      {"L2L-B007", S::kError, "output-name collision in .outputs"},
      {"L2L-B008", S::kError, "truth-table row arity mismatch or bad output column"},
      {"L2L-B009", S::kWarning, "declared input never used"},
      // PLA
      {"L2L-P001", S::kError, "missing/malformed PLA header or cube before header"},
      {"L2L-P002", S::kError, "input plane width differs from .i"},
      {"L2L-P003", S::kError, "output plane width differs from .o"},
      {"L2L-P004", S::kError, "invalid character in a cube plane"},
      {"L2L-P005", S::kWarning, "duplicate cube row"},
      {"L2L-P006", S::kWarning, "contradictory cubes (same input, inconsistent output phase)"},
      {"L2L-P007", S::kWarning, ".p row count differs from actual cube rows"},
      {"L2L-P008", S::kWarning, "cube row with an all-empty output plane (no effect)"},
      // DIMACS CNF
      {"L2L-C001", S::kError, "missing or malformed DIMACS problem line"},
      {"L2L-C002", S::kError, "bad or out-of-range literal"},
      {"L2L-C003", S::kError, "clause count drifts from header (or unterminated clause)"},
      {"L2L-C004", S::kWarning, "empty clause (trivially unsatisfiable)"},
      {"L2L-C005", S::kWarning, "duplicate clause"},
      {"L2L-C006", S::kWarning, "tautological clause (v and -v together)"},
      {"L2L-C007", S::kWarning, "duplicate literal inside one clause"},
      {"L2L-C008", S::kWarning, "declared variable never appears"},
      // placement text
      {"L2L-L001", S::kError, "malformed placement line (want 'cell <id> <col> <row>')"},
      {"L2L-L002", S::kError, "duplicate cell id"},
      {"L2L-L003", S::kError, "cell index out of range"},
      {"L2L-L004", S::kError, "coordinate outside the placement region"},
      {"L2L-L005", S::kError, "two cells on the same site (overlap)"},
      {"L2L-L006", S::kError, "cells missing from the assignment"},
      // routing problem
      {"L2L-R001", S::kError, "malformed routing-problem structure"},
      {"L2L-R002", S::kError, "grid header out of sane range"},
      {"L2L-R003", S::kError, "pin off-grid"},
      {"L2L-R004", S::kError, "pin on a blocked cell"},
      {"L2L-R005", S::kError, "duplicate net id"},
      {"L2L-R006", S::kWarning, "degenerate net (duplicate pins or < 2 distinct pins)"},
      // routing solution
      {"L2L-S001", S::kError, "malformed routing-solution line"},
      {"L2L-S002", S::kError, "duplicate net id in solution"},
      {"L2L-S003", S::kError, "routed cell off-grid"},
      {"L2L-S004", S::kError, "routed cell on an obstacle"},
      {"L2L-S005", S::kWarning, "net id not present in the problem"},
      {"L2L-S006", S::kWarning, "header net count differs from nets in file"},
      // kbdd scripts
      {"L2L-K001", S::kError, "unknown kbdd command"},
      {"L2L-K002", S::kError, "reference to an undefined variable or function"},
      {"L2L-K003", S::kWarning, "duplicate variable declaration"},
      {"L2L-K004", S::kError, "malformed expression or command arguments"},
      // axb linear systems
      {"L2L-A001", S::kError, "bad or out-of-range dimension header"},
      {"L2L-A002", S::kError, "matrix or rhs entry missing / not a number"},
      {"L2L-A003", S::kWarning, "trailing garbage after the rhs vector"},
      {"L2L-A004", S::kWarning, "matrix not symmetric (CG mode needs SPD)"},
  };
  return kRules;
}

const RuleInfo* rule_info(std::string_view id) {
  for (const auto& r : all_rules())
    if (id == r.id) return &r;
  return nullptr;
}

// ---- formats ------------------------------------------------------------

const char* format_name(Format f) {
  switch (f) {
    case Format::kAuto: return "auto";
    case Format::kBlif: return "blif";
    case Format::kPla: return "pla";
    case Format::kCnf: return "cnf";
    case Format::kPlacement: return "place";
    case Format::kRouteProblem: return "route-problem";
    case Format::kRouteSolution: return "route-solution";
    case Format::kKbddScript: return "kbdd";
    case Format::kAxb: return "axb";
    case Format::kUnknown: return "unknown";
  }
  return "unknown";
}

std::optional<Format> parse_format_name(std::string_view name) {
  for (const Format f :
       {Format::kBlif, Format::kPla, Format::kCnf, Format::kPlacement,
        Format::kRouteProblem, Format::kRouteSolution, Format::kKbddScript,
        Format::kAxb, Format::kAuto})
    if (name == format_name(f)) return f;
  return std::nullopt;
}

Format format_from_path(std::string_view path) {
  const auto dot = path.rfind('.');
  if (dot == std::string_view::npos) return Format::kAuto;
  const auto ext = path.substr(dot + 1);
  if (ext == "blif") return Format::kBlif;
  if (ext == "pla") return Format::kPla;
  if (ext == "cnf") return Format::kCnf;
  if (ext == "place") return Format::kPlacement;
  if (ext == "problem") return Format::kRouteProblem;
  if (ext == "sol") return Format::kRouteSolution;
  if (ext == "kbdd") return Format::kKbddScript;
  if (ext == "axb") return Format::kAxb;
  return Format::kAuto;
}

Format sniff_format(const std::string& text) {
  // First meaningful line decides; every format here has a distinctive
  // opener. '#'-comments are shared by several formats, 'c' lines by
  // DIMACS -- skip both.
  std::size_t pos = 0;
  for (int scanned = 0; pos < text.size() && scanned < 64; ++scanned) {
    auto eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const auto t = util::trim(std::string_view(text).substr(pos, eol - pos));
    pos = eol + 1;
    if (t.empty() || t[0] == '#') continue;
    if (util::starts_with(t, "p cnf") || t[0] == 'c') return Format::kCnf;
    if (util::starts_with(t, ".model") || util::starts_with(t, ".inputs"))
      return Format::kBlif;
    if (util::starts_with(t, ".i ") || util::starts_with(t, ".o "))
      return Format::kPla;
    if (util::starts_with(t, "cell ")) return Format::kPlacement;
    if (util::starts_with(t, "grid ")) return Format::kRouteProblem;
    if (util::starts_with(t, "var ")) return Format::kKbddScript;
    // A routing solution opens with a bare net count, then "net <id>".
    if (util::parse_int(t)) {
      while (pos < text.size()) {
        auto e2 = text.find('\n', pos);
        if (e2 == std::string::npos) e2 = text.size();
        const auto t2 =
            util::trim(std::string_view(text).substr(pos, e2 - pos));
        pos = e2 + 1;
        if (t2.empty()) continue;
        return util::starts_with(t2, "net ") ? Format::kRouteSolution
                                             : Format::kAxb;
      }
      return Format::kUnknown;
    }
    return Format::kUnknown;
  }
  return Format::kUnknown;
}

// ---- reports ------------------------------------------------------------

namespace {
int count_severity(const std::vector<Finding>& fs, util::Severity s) {
  int n = 0;
  for (const auto& f : fs) n += f.severity == s ? 1 : 0;
  return n;
}
}  // namespace

int FileReport::errors() const {
  return count_severity(findings, util::Severity::kError);
}
int FileReport::warnings() const {
  return count_severity(findings, util::Severity::kWarning);
}
int FileReport::notes() const {
  return count_severity(findings, util::Severity::kNote);
}

int Report::errors() const {
  int n = 0;
  for (const auto& f : files) n += f.errors();
  return n;
}
int Report::warnings() const {
  int n = 0;
  for (const auto& f : files) n += f.warnings();
  return n;
}
int Report::notes() const {
  int n = 0;
  for (const auto& f : files) n += f.notes();
  return n;
}

bool Report::pass(bool werror) const {
  return errors() == 0 && (!werror || warnings() == 0);
}

std::string Report::to_text() const {
  std::string out;
  for (const auto& fr : files) {
    for (const auto& f : fr.findings)
      out += fr.file + ": " + f.to_string() + "\n";
  }
  out += util::format("lint: %d file(s), %d error(s), %d warning(s), "
                      "%d note(s)\n",
                      static_cast<int>(files.size()), errors(), warnings(),
                      notes());
  return out;
}

std::string Report::to_json() const {
  std::string out = "{\n  \"files\": [\n";
  for (std::size_t i = 0; i < files.size(); ++i) {
    const auto& fr = files[i];
    out += "    {\"file\": \"" + json_escape(fr.file) + "\", \"format\": \"" +
           format_name(fr.format) + "\", \"findings\": [";
    for (std::size_t k = 0; k < fr.findings.size(); ++k) {
      const auto& f = fr.findings[k];
      out += util::format(
          "\n      {\"rule\": \"%s\", \"severity\": \"%s\", \"line\": %d, "
          "\"column\": %d, \"message\": \"%s\", \"hint\": \"%s\"}%s",
          json_escape(f.rule).c_str(), severity_name(f.severity), f.line,
          f.column, json_escape(f.message).c_str(),
          json_escape(f.hint).c_str(),
          k + 1 < fr.findings.size() ? "," : "");
    }
    out += fr.findings.empty() ? "]}" : "\n    ]}";
    out += i + 1 < files.size() ? ",\n" : "\n";
  }
  out += util::format(
      "  ],\n  \"errors\": %d,\n  \"warnings\": %d,\n  \"notes\": %d\n}\n",
      errors(), warnings(), notes());
  return out;
}

// ---- dispatch -----------------------------------------------------------

FileReport lint_text(const std::string& name, const std::string& text,
                     const LintOptions& opt) {
  FileReport fr;
  fr.file = name;
  Format f = opt.format;
  if (f == Format::kAuto) f = format_from_path(name);
  if (f == Format::kAuto) f = sniff_format(text);
  fr.format = f;
  switch (f) {
    case Format::kBlif: fr.findings = lint_blif(text); break;
    case Format::kPla: fr.findings = lint_pla(text); break;
    case Format::kCnf: fr.findings = lint_cnf(text); break;
    case Format::kPlacement:
      fr.findings = lint_placement(text, opt.placement);
      break;
    case Format::kRouteProblem:
      fr.findings = lint_route_problem(text);
      break;
    case Format::kRouteSolution:
      fr.findings = lint_route_solution(text, opt.route_problem);
      break;
    case Format::kKbddScript: fr.findings = lint_kbdd_script(text); break;
    case Format::kAxb: fr.findings = lint_axb(text); break;
    case Format::kAuto:
    case Format::kUnknown:
      fr.format = Format::kUnknown;
      fr.findings.push_back(
          {"L2L-X000", util::Severity::kNote, 0, 0,
           "unrecognized format: no rule pack applies",
           "pass --format to force one"});
      break;
  }
  sort_findings(fr.findings);
  // Per-rule tallies: commutative counter sums, so concurrent lint_files
  // lanes stay within the deterministic-export contract.
  if (obs::enabled() && !fr.findings.empty()) {
    obs::count("lint.findings",
               static_cast<std::int64_t>(fr.findings.size()));
    for (const auto& finding : fr.findings)
      obs::count("lint.rule." + finding.rule);
  }
  return fr;
}

Report lint_files(
    const std::vector<std::pair<std::string, std::string>>& named_texts,
    const LintOptions& opt) {
  obs::count("lint.files", static_cast<std::int64_t>(named_texts.size()));
  Report report;
  report.files.resize(named_texts.size());
  util::parallel_for(0, static_cast<std::int64_t>(named_texts.size()), 1,
                     [&](std::int64_t i) {
                       const auto k = static_cast<std::size_t>(i);
                       report.files[k] = lint_text(named_texts[k].first,
                                                   named_texts[k].second, opt);
                     });
  return report;
}

}  // namespace l2l::lint
