// Tool-input rule packs for the two remaining portals: kbdd_lite
// calculator scripts (L2L-Kxxx, a static symbol/shape check that never
// builds a BDD) and axb dense linear systems (L2L-Axxx, shape plus the
// symmetry pre-check CG mode needs).

#include <cmath>
#include <set>
#include <sstream>

#include "lint/lint.hpp"
#include "util/strings.hpp"

namespace l2l::lint {
namespace {

std::string excerpt(std::string_view t) {
  constexpr std::size_t kMax = 60;
  if (t.size() <= kMax) return std::string(t);
  return std::string(t.substr(0, kMax)) + "...";
}

bool is_ident_char(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

}  // namespace

std::vector<Finding> lint_kbdd_script(const std::string& text) {
  std::vector<Finding> out;
  auto emit = [&](const char* rule, util::Severity sev, int line,
                  std::string msg, std::string hint = {}) {
    out.push_back({rule, sev, line, line > 0 ? 1 : 0, std::move(msg),
                   std::move(hint)});
  };

  std::set<std::string> vars, fns;
  // Commands taking exactly one defined-function argument.
  const std::set<std::string> kOneFn = {"print", "satcount", "onesat",
                                        "size",  "support",  "dot"};

  // A name is resolvable as a function operand if it was defined with
  // `name = expr`, or is a declared variable (single-var functions are
  // legal operands everywhere the calculator accepts a function).
  auto known_fn = [&](const std::string& name) {
    return fns.count(name) > 0 || vars.count(name) > 0;
  };

  // Static expression scan: parenthesis balance, token alphabet, and
  // identifier resolution. No BDD is built.
  auto check_expr = [&](const std::string& expr, int line) {
    int depth = 0;
    std::size_t i = 0;
    while (i < expr.size()) {
      const char c = expr[i];
      if (c == ' ' || c == '\t') {
        ++i;
      } else if (c == '(') {
        ++depth;
        ++i;
      } else if (c == ')') {
        if (--depth < 0) break;
        ++i;
      } else if (c == '!' || c == '&' || c == '|' || c == '^') {
        ++i;
      } else if (c == '0' || c == '1') {
        ++i;
      } else if (is_ident_char(c)) {
        std::size_t j = i;
        while (j < expr.size() && is_ident_char(expr[j])) ++j;
        const auto name = expr.substr(i, j - i);
        if (!known_fn(name))
          emit("L2L-K002", util::Severity::kError, line,
               "undefined name '" + name + "' in expression",
               "declare it with 'var' or define it before use");
        i = j;
      } else {
        emit("L2L-K004", util::Severity::kError, line,
             std::string("bad character '") + c + "' in expression",
             "expressions use identifiers, ! & | ^ ( ) 0 1");
        return;
      }
    }
    if (depth != 0)
      emit("L2L-K004", util::Severity::kError, line,
           "unbalanced parentheses in expression");
  };

  std::istringstream in(text);
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const auto t = std::string(util::trim(raw));
    if (t.empty() || t[0] == '#') continue;
    const auto tok = util::split(t);
    if (tok[0] == "var") {
      for (std::size_t k = 1; k < tok.size(); ++k)
        if (!vars.insert(tok[k]).second)
          emit("L2L-K003", util::Severity::kWarning, lineno,
               "variable '" + tok[k] + "' declared twice");
      continue;
    }
    if (tok.size() >= 3 && tok[1] == "=") {
      std::string expr;
      for (std::size_t k = 2; k < tok.size(); ++k) expr += tok[k] + " ";
      check_expr(expr, lineno);
      fns.insert(tok[0]);
      continue;
    }
    auto need_fn_arg = [&](std::size_t k) {
      if (k >= tok.size()) {
        emit("L2L-K004", util::Severity::kError, lineno,
             "'" + tok[0] + "' is missing an argument");
        return;
      }
      if (!known_fn(tok[k]))
        emit("L2L-K002", util::Severity::kError, lineno,
             "undefined function '" + tok[k] + "'");
    };
    if (kOneFn.count(tok[0])) {
      need_fn_arg(1);
    } else if (tok[0] == "equal") {
      need_fn_arg(1);
      need_fn_arg(2);
    } else if (tok[0] == "cofactor") {
      need_fn_arg(1);
      if (tok.size() < 4 || !vars.count(tok[2]) ||
          (tok[3] != "0" && tok[3] != "1")) {
        emit("L2L-K004", util::Severity::kError, lineno,
             "cofactor wants '<fn> <var> <0|1>'");
      }
      fns.insert("it");
    } else if (tok[0] == "exists" || tok[0] == "forall") {
      need_fn_arg(1);
      if (tok.size() < 3 || !vars.count(tok[2]))
        emit("L2L-K004", util::Severity::kError, lineno,
             "'" + tok[0] + "' wants '<fn> <var>'");
      fns.insert("it");
    } else if (tok[0] == "quit" || tok[0] == "exit") {
      break;
    } else {
      emit("L2L-K001", util::Severity::kError, lineno,
           "unknown command '" + excerpt(tok[0]) + "'",
           "see kbdd_lite's header for the command list");
    }
  }

  sort_findings(out);
  return out;
}

std::vector<Finding> lint_axb(const std::string& text) {
  std::vector<Finding> out;
  auto emit = [&](const char* rule, util::Severity sev, int line,
                  std::string msg, std::string hint = {}) {
    out.push_back({rule, sev, line, line > 0 ? 1 : 0, std::move(msg),
                   std::move(hint)});
  };

  // Token stream with line anchors.
  struct Tok {
    std::string text;
    int line;
  };
  std::vector<Tok> toks;
  {
    std::istringstream in(text);
    std::string raw;
    int lineno = 0;
    while (std::getline(in, raw)) {
      ++lineno;
      const auto t = util::trim(raw);
      if (t.empty() || t[0] == '#') continue;
      for (const auto& piece : util::split(t)) toks.push_back({piece, lineno});
      // Hostile floods: the shape rules only need n*(n+1)+1 tokens; a cap
      // keeps the scan linear in sane inputs. Trailing excess is A003.
      if (toks.size() > (4096u + 1) * 4096u + 4096u + 2) break;
    }
  }

  constexpr int kMaxDim = 4096;  // same cap as the axb tool
  if (toks.empty()) {
    emit("L2L-A001", util::Severity::kError, 0, "empty file",
         "first token must be the dimension n");
    return out;
  }
  const auto n = util::parse_int(toks[0].text);
  if (!n || *n < 1 || *n > kMaxDim) {
    emit("L2L-A001", util::Severity::kError, toks[0].line,
         "bad dimension '" + excerpt(toks[0].text) + "'",
         util::format("use an integer in [1, %d]", kMaxDim));
    return out;
  }
  const std::size_t want =
      1 + static_cast<std::size_t>(*n) * static_cast<std::size_t>(*n) +
      static_cast<std::size_t>(*n);
  std::vector<double> a;
  bool numbers_ok = true;
  for (std::size_t k = 1; k < toks.size() && k < want; ++k) {
    const auto v = util::parse_double(toks[k].text);
    if (!v) {
      emit("L2L-A002", util::Severity::kError, toks[k].line,
           "entry '" + excerpt(toks[k].text) + "' is not a number");
      numbers_ok = false;
      continue;
    }
    if (k <= static_cast<std::size_t>(*n) * static_cast<std::size_t>(*n))
      a.push_back(*v);
  }
  if (toks.size() < want)
    emit("L2L-A002", util::Severity::kError, toks.back().line,
         util::format("file ends early: %d token(s) of %d (n, n*n matrix "
                      "entries, n rhs entries)",
                      static_cast<int>(toks.size()),
                      static_cast<int>(want)));
  else if (toks.size() > want)
    emit("L2L-A003", util::Severity::kWarning, toks[want].line,
         util::format("%d trailing token(s) after the rhs vector",
                      static_cast<int>(toks.size() - want)));
  if (numbers_ok &&
      a.size() ==
          static_cast<std::size_t>(*n) * static_cast<std::size_t>(*n)) {
    for (int i = 0; i < *n; ++i)
      for (int j = i + 1; j < *n; ++j) {
        const double x = a[static_cast<std::size_t>(i) *
                               static_cast<std::size_t>(*n) +
                           static_cast<std::size_t>(j)];
        const double y = a[static_cast<std::size_t>(j) *
                               static_cast<std::size_t>(*n) +
                           static_cast<std::size_t>(i)];
        if (std::abs(x - y) >
            1e-9 * std::max(1.0, std::max(std::abs(x), std::abs(y)))) {
          emit("L2L-A004", util::Severity::kWarning, 0,
               util::format("matrix not symmetric (a[%d][%d]=%g vs "
                            "a[%d][%d]=%g)",
                            i, j, x, j, i, y),
               "--cg requires a symmetric positive definite matrix");
          i = *n;  // one finding is enough
          break;
        }
      }
  }

  sort_findings(out);
  return out;
}

}  // namespace l2l::lint
