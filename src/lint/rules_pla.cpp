// PLA rule pack (L2L-Pxxx): header/plane shape checks plus the two-level
// consistency rules (duplicate and contradictory cubes, dead rows, .p
// drift). Cube comparison is textual on the normalized plane ('2' ==
// '-'), so no cover machinery is pulled in and hostile dimensions cost
// nothing.

#include <map>
#include <sstream>

#include "lint/lint.hpp"
#include "util/strings.hpp"

namespace l2l::lint {
namespace {

std::string excerpt(std::string_view t) {
  constexpr std::size_t kMax = 60;
  if (t.size() <= kMax) return std::string(t);
  return std::string(t.substr(0, kMax)) + "...";
}

/// '-' and '2' both mean don't-care; normalize for row comparison.
std::string normalize_plane(std::string_view plane) {
  std::string out(plane);
  for (auto& c : out)
    if (c == '2') c = '-';
  return out;
}

}  // namespace

std::vector<Finding> lint_pla(const std::string& text) {
  std::vector<Finding> out;
  auto emit = [&](const char* rule, util::Severity sev, int line,
                  std::string msg, std::string hint = {}) {
    out.push_back({rule, sev, line, line > 0 ? 1 : 0, std::move(msg),
                   std::move(hint)});
  };

  // Same sanity cap as the parser: headers size allocations.
  constexpr int kMaxPlanes = 4096;
  int num_inputs = -1, num_outputs = -1;
  int declared_rows = -1, declared_rows_line = 0;
  int actual_rows = 0;
  // Normalized input plane -> (first line, per-output phase seen).
  struct RowInfo {
    int line = 0;
    std::string out_plane;
  };
  std::map<std::string, RowInfo> rows;

  std::istringstream in(text);
  std::string raw;
  int lineno = 0;
  bool ended = false;
  while (std::getline(in, raw) && !ended) {
    ++lineno;
    const auto t = std::string(util::trim(raw));
    if (t.empty() || t[0] == '#') continue;
    if (t[0] == '.') {
      const auto tok = util::split(t);
      auto header_count = [&](const char* what) {
        if (tok.size() < 2) {
          emit("L2L-P001", util::Severity::kError, lineno,
               std::string(what) + " needs a count");
          return -1;
        }
        const auto v = util::parse_int(tok[1]);
        if (!v || *v < 0 || *v > kMaxPlanes) {
          emit("L2L-P001", util::Severity::kError, lineno,
               std::string("bad ") + what + " count '" + excerpt(tok[1]) + "'",
               util::format("use an integer in [0, %d]", kMaxPlanes));
          return -1;
        }
        return *v;
      };
      if (tok[0] == ".i") {
        num_inputs = header_count(".i");
      } else if (tok[0] == ".o") {
        num_outputs = header_count(".o");
      } else if (tok[0] == ".p") {
        if (tok.size() > 1)
          if (const auto v = util::parse_int(tok[1]); v && *v >= 0) {
            declared_rows = *v;
            declared_rows_line = lineno;
          }
      } else if (tok[0] == ".ilb" || tok[0] == ".ob" || tok[0] == ".type") {
        // label/type hints: nothing to check statically
      } else if (tok[0] == ".e" || tok[0] == ".end") {
        ended = true;
      } else {
        emit("L2L-P001", util::Severity::kError, lineno,
             "unknown directive '" + excerpt(tok[0]) + "'");
      }
      continue;
    }
    // Cube row.
    if (num_inputs < 0 || num_outputs < 0) {
      emit("L2L-P001", util::Severity::kError, lineno,
           "cube row before the .i/.o header",
           "declare .i and .o before any cube");
      continue;
    }
    const auto tok = util::split(t);
    if (tok.size() != 2) {
      emit("L2L-P001", util::Severity::kError, lineno,
           "cube row '" + excerpt(t) + "' must be '<inputs> <outputs>'");
      continue;
    }
    ++actual_rows;
    bool shape_ok = true;
    if (static_cast<int>(tok[0].size()) != num_inputs) {
      emit("L2L-P002", util::Severity::kError, lineno,
           util::format("input plane has %d column(s), .i declares %d",
                        static_cast<int>(tok[0].size()), num_inputs));
      shape_ok = false;
    }
    if (static_cast<int>(tok[1].size()) != num_outputs) {
      emit("L2L-P003", util::Severity::kError, lineno,
           util::format("output plane has %d column(s), .o declares %d",
                        static_cast<int>(tok[1].size()), num_outputs));
      shape_ok = false;
    }
    for (const char c : tok[0])
      if (c != '0' && c != '1' && c != '-' && c != '2') {
        emit("L2L-P004", util::Severity::kError, lineno,
             std::string("bad input-plane character '") + c + "'",
             "use 0, 1, or -");
        shape_ok = false;
        break;
      }
    bool any_effect = false;
    for (const char c : tok[1]) {
      if (c != '0' && c != '1' && c != '-' && c != '2' && c != '~') {
        emit("L2L-P004", util::Severity::kError, lineno,
             std::string("bad output-plane character '") + c + "'",
             "use 0, 1, -, or ~");
        shape_ok = false;
        break;
      }
      if (c != '0' && c != '~') any_effect = true;
    }
    if (!shape_ok) continue;
    if (!any_effect && num_outputs > 0)
      emit("L2L-P008", util::Severity::kWarning, lineno,
           "row contributes to no output (all-0/~ output plane)",
           "delete the row or mark the intended outputs");
    const auto key = normalize_plane(tok[0]);
    const auto norm_out = normalize_plane(tok[1]);
    const auto [it, fresh] = rows.try_emplace(key, RowInfo{lineno, norm_out});
    if (fresh) continue;
    if (it->second.out_plane == norm_out) {
      emit("L2L-P005", util::Severity::kWarning, lineno,
           "duplicate cube row (first on line " +
               std::to_string(it->second.line) + ")");
      continue;
    }
    // Same input cube, different output planes: contradiction when one
    // row asserts ON ('1') and the other OFF ('0') for the same output.
    bool contradiction = false;
    for (std::size_t k = 0;
         k < norm_out.size() && k < it->second.out_plane.size(); ++k) {
      const char a = it->second.out_plane[k], b = norm_out[k];
      if ((a == '1' && b == '0') || (a == '0' && b == '1')) contradiction = true;
    }
    if (contradiction)
      emit("L2L-P006", util::Severity::kWarning, lineno,
           "contradictory cube: same inputs as line " +
               std::to_string(it->second.line) +
               " with an inconsistent output phase",
           "pick one phase per (cube, output) pair");
  }

  if (num_inputs < 0)
    emit("L2L-P001", util::Severity::kError, 0, "missing .i header");
  if (num_outputs < 0)
    emit("L2L-P001", util::Severity::kError, 0, "missing .o header");
  if (declared_rows >= 0 && declared_rows != actual_rows)
    emit("L2L-P007", util::Severity::kWarning, declared_rows_line,
         util::format(".p declares %d row(s) but the file has %d",
                      declared_rows, actual_rows),
         "update .p (it is advisory but tools cross-check it)");

  sort_findings(out);
  return out;
}

}  // namespace l2l::lint
