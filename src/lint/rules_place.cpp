// Placement rule pack (L2L-Lxxx): "cell <id> <col> <row>" text. With a
// PlacementSpec the range/overlap/completeness rules run against the
// assignment's grid; without one only the shape rules apply, so a
// standalone file still lints.

#include <map>
#include <sstream>

#include "lint/lint.hpp"
#include "util/strings.hpp"

namespace l2l::lint {
namespace {

std::string excerpt(std::string_view t) {
  constexpr std::size_t kMax = 60;
  if (t.size() <= kMax) return std::string(t);
  return std::string(t.substr(0, kMax)) + "...";
}

}  // namespace

std::vector<Finding> lint_placement(const std::string& text,
                                    const PlacementSpec& spec) {
  std::vector<Finding> out;
  auto emit = [&](const char* rule, util::Severity sev, int line,
                  std::string msg, std::string hint = {}) {
    out.push_back({rule, sev, line, line > 0 ? 1 : 0, std::move(msg),
                   std::move(hint)});
  };

  std::map<int, int> cell_line;                   // cell id -> first line
  std::map<std::pair<int, int>, int> site_owner;  // (col,row) -> cell id
  std::istringstream in(text);
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const auto t = util::trim(raw);
    if (t.empty() || t[0] == '#') continue;
    const auto tok = util::split(t);
    if (tok.size() != 4 || tok[0] != "cell") {
      emit("L2L-L001", util::Severity::kError, lineno,
           "bad line '" + excerpt(t) + "'",
           "write 'cell <id> <col> <row>'");
      continue;
    }
    const auto c = util::parse_int(tok[1]);
    const auto col = util::parse_int(tok[2]);
    const auto row = util::parse_int(tok[3]);
    if (!c || !col || !row) {
      emit("L2L-L001", util::Severity::kError, lineno,
           "bad number in '" + excerpt(t) + "'");
      continue;
    }
    if (*c < 0 || (spec.num_cells >= 0 && *c >= spec.num_cells)) {
      emit("L2L-L003", util::Severity::kError, lineno,
           spec.num_cells >= 0
               ? util::format("cell index %d out of range [0, %d)", *c,
                              spec.num_cells)
               : util::format("cell index %d is negative", *c));
      continue;
    }
    const auto [it, fresh] = cell_line.try_emplace(*c, lineno);
    if (!fresh) {
      emit("L2L-L002", util::Severity::kError, lineno,
           util::format("cell %d assigned twice (first on line %d)", *c,
                        it->second),
           "keep one line per cell");
      continue;
    }
    const bool col_bad = *col < 0 || (spec.cols >= 0 && *col >= spec.cols);
    const bool row_bad = *row < 0 || (spec.rows >= 0 && *row >= spec.rows);
    if (col_bad || row_bad) {
      emit("L2L-L004", util::Severity::kError, lineno,
           spec.cols >= 0 && spec.rows >= 0
               ? util::format(
                     "site (%d, %d) outside the %d x %d region", *col, *row,
                     spec.cols, spec.rows)
               : util::format("negative site coordinate (%d, %d)", *col,
                              *row));
      continue;
    }
    const auto [owner, site_fresh] =
        site_owner.try_emplace({*col, *row}, *c);
    if (!site_fresh)
      emit("L2L-L005", util::Severity::kError, lineno,
           util::format("cell %d overlaps cell %d at site (%d, %d)", *c,
                        owner->second, *col, *row),
           "every cell needs its own site");
  }
  if (spec.num_cells >= 0) {
    int missing = 0, first_missing = -1;
    for (int c = 0; c < spec.num_cells; ++c)
      if (!cell_line.count(c)) {
        ++missing;
        if (first_missing < 0) first_missing = c;
      }
    if (missing > 0)
      emit("L2L-L006", util::Severity::kError, 0,
           util::format("%d cell(s) unassigned (first: cell %d)", missing,
                        first_missing),
           "every cell needs exactly one 'cell' line");
  }

  sort_findings(out);
  return out;
}

}  // namespace l2l::lint
