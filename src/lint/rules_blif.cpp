// BLIF rule pack (L2L-Bxxx): structural analysis of a combinational BLIF
// netlist without building covers or running any engine. The pack scans
// the text once into directive records (tracking the source line of every
// signal mention), then runs graph rules over the name-level netlist:
// driver multiplicity, undriven uses, cycles (iterative DFS -- hostile
// inputs may nest thousands deep), dangling nodes, and per-row truth
// table shape checks.

#include <map>
#include <sstream>

#include "lint/lint.hpp"
#include "util/strings.hpp"

namespace l2l::lint {
namespace {

struct Line {
  int number = 0;  ///< 1-based line of the first physical line
  std::string text;
};

struct Block {
  int line = 0;                      ///< line of the .names directive
  std::vector<std::string> signals;  ///< fanins + output (last)
  std::vector<Line> cubes;
};

std::string excerpt(std::string_view t) {
  constexpr std::size_t kMax = 60;
  if (t.size() <= kMax) return std::string(t);
  return std::string(t.substr(0, kMax)) + "...";
}

}  // namespace

std::vector<Finding> lint_blif(const std::string& text) {
  std::vector<Finding> out;
  auto emit = [&](const char* rule, util::Severity sev, int line,
                  std::string msg, std::string hint = {}) {
    out.push_back({rule, sev, line, line > 0 ? 1 : 0, std::move(msg),
                   std::move(hint)});
  };

  // Pass 1: physical lines -> logical lines (continuation-aware), with
  // the line number of the first physical piece preserved.
  std::vector<Line> lines;
  {
    std::istringstream in(text);
    std::string raw, pending;
    int lineno = 0, pending_line = 0;
    while (std::getline(in, raw)) {
      ++lineno;
      auto t = std::string(util::trim(raw));
      const auto hash = t.find('#');
      if (hash != std::string::npos)
        t = std::string(util::trim(t.substr(0, hash)));
      if (t.empty()) continue;
      if (t.back() == '\\') {
        if (pending.empty()) pending_line = lineno;
        pending += t.substr(0, t.size() - 1) + " ";
        continue;
      }
      lines.push_back({pending.empty() ? lineno : pending_line, pending + t});
      pending.clear();
    }
    if (!pending.empty())
      emit("L2L-B001", util::Severity::kError, pending_line,
           "dangling '\\' line continuation at end of file",
           "complete the continued line or drop the trailing backslash");
  }

  // Pass 2: directives -> blocks + declarations.
  std::vector<std::string> inputs, outputs;
  std::map<std::string, int> input_line, output_line;
  std::vector<Block> blocks;
  Block* current = nullptr;
  bool ended = false;
  for (const auto& l : lines) {
    if (ended) break;
    if (l.text[0] == '.') {
      const auto tok = util::split(l.text);
      current = nullptr;
      if (tok[0] == ".model") {
        // name optional; nothing to check statically
      } else if (tok[0] == ".inputs") {
        for (std::size_t k = 1; k < tok.size(); ++k) {
          const auto [it, fresh] = input_line.try_emplace(tok[k], l.number);
          if (!fresh)
            emit("L2L-B004", util::Severity::kError, l.number,
                 "input '" + tok[k] + "' declared twice (first on line " +
                     std::to_string(it->second) + ")",
                 "remove the duplicate declaration");
          else
            inputs.push_back(tok[k]);
        }
      } else if (tok[0] == ".outputs") {
        for (std::size_t k = 1; k < tok.size(); ++k) {
          const auto [it, fresh] = output_line.try_emplace(tok[k], l.number);
          if (!fresh)
            emit("L2L-B007", util::Severity::kError, l.number,
                 "output '" + tok[k] + "' listed twice (first on line " +
                     std::to_string(it->second) + ")",
                 "each output name may appear once in .outputs");
          else
            outputs.push_back(tok[k]);
        }
      } else if (tok[0] == ".names") {
        if (tok.size() < 2) {
          emit("L2L-B001", util::Severity::kError, l.number,
               ".names needs at least an output signal",
               "write '.names <fanins...> <output>'");
          continue;
        }
        blocks.push_back(Block{l.number, {tok.begin() + 1, tok.end()}, {}});
        current = &blocks.back();
      } else if (tok[0] == ".end") {
        ended = true;
      } else if (tok[0] == ".latch") {
        emit("L2L-B002", util::Severity::kError, l.number,
             "sequential elements (.latch) are not supported",
             "this flow handles the combinational BLIF subset only");
      } else {
        emit("L2L-B002", util::Severity::kError, l.number,
             "unsupported directive '" + excerpt(tok[0]) + "'");
      }
      continue;
    }
    if (!current) {
      emit("L2L-B001", util::Severity::kError, l.number,
           "cube line '" + excerpt(l.text) + "' outside a .names block",
           "cube rows must follow a .names directive");
      continue;
    }
    current->cubes.push_back(l);
  }

  // Drivers: .inputs and every .names output. Multiplicity > 1 = B004.
  std::map<std::string, int> driver_line;  // name -> first driving line
  for (const auto& name : inputs) driver_line.emplace(name, input_line[name]);
  for (const auto& b : blocks) {
    const auto& name = b.signals.back();
    const auto [it, fresh] = driver_line.try_emplace(name, b.line);
    if (!fresh)
      emit("L2L-B004", util::Severity::kError, b.line,
           "net '" + name + "' multiply driven (first driver on line " +
               std::to_string(it->second) + ")",
           "merge the blocks or rename one output");
  }

  // Undriven uses (B003): fanins and declared outputs with no driver.
  // One finding per name, anchored at the first offending mention.
  std::map<std::string, int> undriven;  // name -> first use line
  for (const auto& b : blocks)
    for (std::size_t k = 0; k + 1 < b.signals.size(); ++k)
      if (!driver_line.count(b.signals[k]))
        undriven.try_emplace(b.signals[k], b.line);
  for (const auto& name : outputs)
    if (!driver_line.count(name)) {
      const auto it = undriven.find(name);
      if (it == undriven.end() || output_line[name] < it->second)
        undriven[name] = output_line[name];
    }
  for (const auto& [name, line] : undriven)
    emit("L2L-B003", util::Severity::kError, line,
         "undriven net '" + name + "'",
         "add a .names block driving it or declare it in .inputs");

  // Combinational cycles (B005): iterative DFS over the signal graph
  // (edges fanin -> output). Hostile inputs may chain thousands of
  // blocks, so no recursion. Blocks are visited in file order and each
  // cycle is reported once, at its closing block.
  {
    std::map<std::string, std::size_t> producer;  // output name -> block
    for (std::size_t b = 0; b < blocks.size(); ++b)
      producer.try_emplace(blocks[b].signals.back(), b);
    // 0 = white, 1 = on stack, 2 = done.
    std::vector<int> color(blocks.size(), 0);
    for (std::size_t root = 0; root < blocks.size(); ++root) {
      if (color[root] != 0) continue;
      // Stack of (block, next fanin index to expand).
      std::vector<std::pair<std::size_t, std::size_t>> stack{{root, 0}};
      color[root] = 1;
      while (!stack.empty()) {
        auto& [b, next] = stack.back();
        const auto& sig = blocks[b].signals;
        if (next + 1 >= sig.size()) {
          color[b] = 2;
          stack.pop_back();
          continue;
        }
        const auto it = producer.find(sig[next++]);
        if (it == producer.end()) continue;  // input or undriven
        if (color[it->second] == 1) {
          emit("L2L-B005", util::Severity::kError, blocks[b].line,
               "combinational cycle through net '" +
                   blocks[it->second].signals.back() + "'",
               "break the feedback loop; this flow is acyclic");
        } else if (color[it->second] == 0) {
          color[it->second] = 1;
          stack.emplace_back(it->second, 0);
        }
      }
    }
  }

  // Fanout analysis: dangling internal nodes (B006) and unused inputs
  // (B009). "Used" = appears as some block's fanin or is an output.
  {
    std::map<std::string, bool> used;
    for (const auto& b : blocks)
      for (std::size_t k = 0; k + 1 < b.signals.size(); ++k)
        used[b.signals[k]] = true;
    for (const auto& name : outputs) used[name] = true;
    for (const auto& b : blocks) {
      const auto& name = b.signals.back();
      if (!used.count(name))
        emit("L2L-B006", util::Severity::kWarning, b.line,
             "dangling node '" + name + "' drives nothing",
             "remove it or add it to .outputs");
    }
    for (const auto& name : inputs)
      if (!used.count(name))
        emit("L2L-B009", util::Severity::kWarning, input_line[name],
             "input '" + name + "' is never used");
  }

  // Per-row truth-table shape (B008).
  for (const auto& b : blocks) {
    const auto arity = b.signals.size() - 1;
    bool saw_on = false, saw_off = false;
    int mixed_line = 0;
    for (const auto& row : b.cubes) {
      const auto tok = util::split(row.text);
      const std::string* out_col = nullptr;
      if (arity == 0) {
        if (tok.size() != 1) {
          emit("L2L-B008", util::Severity::kError, row.number,
               "constant block row '" + excerpt(row.text) +
                   "' must be a single 0 or 1");
          continue;
        }
        out_col = &tok[0];
      } else {
        if (tok.size() != 2) {
          emit("L2L-B008", util::Severity::kError, row.number,
               "cube row '" + excerpt(row.text) +
                   "' must be '<plane> <0|1>'");
          continue;
        }
        if (tok[0].size() != arity) {
          emit("L2L-B008", util::Severity::kError, row.number,
               util::format("cube width %d does not match %d fanin(s)",
                            static_cast<int>(tok[0].size()),
                            static_cast<int>(arity)),
               "one column per fanin of the .names block");
          continue;
        }
        for (const char c : tok[0])
          if (c != '0' && c != '1' && c != '-') {
            emit("L2L-B008", util::Severity::kError, row.number,
                 std::string("bad input-plane character '") + c + "'",
                 "use 0, 1, or -");
            break;
          }
        out_col = &tok[1];
      }
      if (*out_col == "1")
        saw_on = true;
      else if (*out_col == "0")
        saw_off = true;
      else
        emit("L2L-B008", util::Severity::kError, row.number,
             "output column must be 0 or 1, got '" + excerpt(*out_col) + "'");
      if (saw_on && saw_off && mixed_line == 0) mixed_line = row.number;
    }
    if (mixed_line > 0)
      emit("L2L-B008", util::Severity::kError, mixed_line,
           "block '" + b.signals.back() + "' mixes 0 and 1 output rows",
           "a block lists either its ON-set or its OFF-set, not both");
  }

  sort_findings(out);
  return out;
}

}  // namespace l2l::lint
