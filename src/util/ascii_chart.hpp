#pragma once
// ASCII rendering of simple bar charts and tables. The paper's figures are
// bar charts (Fig 1, Fig 2, Fig 9) and tabular funnels (Fig 8, Fig 10);
// the figure benches use this to print the same series in a terminal.

#include <string>
#include <vector>

namespace l2l::util {

struct BarDatum {
  std::string label;
  double value = 0.0;
};

struct BarChartOptions {
  int width = 50;            ///< max bar width in characters
  char fill = '#';           ///< bar fill character
  bool show_value = true;    ///< append the numeric value after the bar
  int label_width = 0;       ///< 0 = auto (widest label)
  std::string value_suffix;  ///< e.g. " min"
};

/// Render a horizontal bar chart, one row per datum, scaled to the max value.
std::string render_bar_chart(const std::vector<BarDatum>& data,
                             const BarChartOptions& opts = {});

/// Render a table with a header row; columns are padded to the widest cell.
std::string render_table(const std::vector<std::string>& header,
                         const std::vector<std::vector<std::string>>& rows);

}  // namespace l2l::util
