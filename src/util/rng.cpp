#include "util/rng.hpp"

#include <cmath>

namespace l2l::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  have_gauss_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Lemire's nearly-divisionless rejection method would be overkill here;
  // a simple rejection loop keeps the result exactly uniform.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_gaussian() {
  if (have_gauss_) {
    have_gauss_ = false;
    return gauss_;
  }
  double u1 = 0.0;
  do {
    u1 = next_double();
  } while (u1 <= 1e-300);
  const double u2 = next_double();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  gauss_ = mag * std::sin(kTwoPi * u2);
  have_gauss_ = true;
  return mag * std::cos(kTwoPi * u2);
}

}  // namespace l2l::util
