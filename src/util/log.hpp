#pragma once
// Minimal severity-tagged logging to stderr. Tools and examples use this
// for progress reporting; the library core never logs on the hot path.

#include <string_view>

namespace l2l::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Set the minimum level that is actually emitted (default: kInfo).
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line: "[level] message\n" to stderr if level passes the filter.
void log(LogLevel level, std::string_view msg);

inline void log_debug(std::string_view msg) { log(LogLevel::kDebug, msg); }
inline void log_info(std::string_view msg) { log(LogLevel::kInfo, msg); }
inline void log_warn(std::string_view msg) { log(LogLevel::kWarn, msg); }
inline void log_error(std::string_view msg) { log(LogLevel::kError, msg); }

}  // namespace l2l::util
