#pragma once
// Structured error reporting for the grading service: a Status is the
// machine-readable outcome of an engine run (ok / timeout / budget / parse
// error / ...), and a Diagnostic is a line/column-anchored message a
// grader or tool front-end can show a student. The MOOC's operational
// contract -- arbitrary hostile submissions, graded unattended -- means
// nothing in the grading path may abort; everything funnels into these
// two types instead.
//
// The tools/ front-ends map StatusCode to a fixed exit-code convention
// (documented in DESIGN.md "Failure model & resource guards"):
//   0 success, 1 processing failure, 2 usage/IO error, 3 malformed input,
//   4 resource budget exceeded, 5 internal error.

#include <stdexcept>
#include <string>
#include <vector>

#include "util/exit_codes.hpp"  // the shared tool exit-code table

namespace l2l::util {

enum class StatusCode {
  kOk = 0,
  kTimeout,          ///< wall-clock deadline passed
  kBudgetExceeded,   ///< step / node / iteration budget exhausted
  kCancelled,        ///< cooperative cancellation token fired
  kParseError,       ///< malformed input text
  kInvalidInput,     ///< well-formed text, semantically impossible values
  kInternalError,    ///< unexpected exception escaped an engine
};

const char* status_code_name(StatusCode code);

struct Status {
  StatusCode code = StatusCode::kOk;
  std::string message;

  bool ok() const { return code == StatusCode::kOk; }
  /// "kTimeout: stage 'route' exceeded 50ms" style rendering.
  std::string to_string() const;

  static Status okay() { return {}; }
  static Status timeout(std::string msg) {
    return {StatusCode::kTimeout, std::move(msg)};
  }
  static Status budget(std::string msg) {
    return {StatusCode::kBudgetExceeded, std::move(msg)};
  }
  static Status cancelled(std::string msg) {
    return {StatusCode::kCancelled, std::move(msg)};
  }
  static Status parse_error(std::string msg) {
    return {StatusCode::kParseError, std::move(msg)};
  }
  static Status invalid(std::string msg) {
    return {StatusCode::kInvalidInput, std::move(msg)};
  }
  static Status internal(std::string msg) {
    return {StatusCode::kInternalError, std::move(msg)};
  }
};

enum class Severity { kError, kWarning, kNote };

/// One anchored finding in a student submission. line/column are 1-based;
/// 0 means "not attributable to a position" (e.g. a file-level problem).
struct Diagnostic {
  Severity severity = Severity::kError;
  int line = 0;
  int column = 0;
  std::string message;

  /// "line 12, col 7: error: bad cell index" (position parts omitted
  /// when unknown).
  std::string to_string() const;
};

Diagnostic make_error(int line, int column, std::string message);
Diagnostic make_warning(int line, int column, std::string message);

/// Render a diagnostic list one-per-line (the "one upload, full feedback"
/// report block appended to grader output).
std::string render_diagnostics(const std::vector<Diagnostic>& diags);

/// Thrown by engines that unwind via exceptions when their Budget runs
/// out (the BDD manager: recursion makes a return-code unwind invasive).
/// API boundaries catch it and convert back to a Status.
class BudgetExceededError : public std::runtime_error {
 public:
  explicit BudgetExceededError(Status status)
      : std::runtime_error(status.to_string()), status_(std::move(status)) {}
  const Status& status() const { return status_; }

 private:
  Status status_;
};

}  // namespace l2l::util
