#include "util/status.hpp"

#include "util/strings.hpp"

namespace l2l::util {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kTimeout: return "timeout";
    case StatusCode::kBudgetExceeded: return "budget-exceeded";
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kParseError: return "parse-error";
    case StatusCode::kInvalidInput: return "invalid-input";
    case StatusCode::kInternalError: return "internal-error";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (message.empty()) return status_code_name(code);
  return std::string(status_code_name(code)) + ": " + message;
}

namespace {
const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kNote: return "note";
  }
  return "error";
}
}  // namespace

std::string Diagnostic::to_string() const {
  std::string out;
  if (line > 0) {
    out += format("line %d", line);
    if (column > 0) out += format(", col %d", column);
    out += ": ";
  }
  out += severity_name(severity);
  out += ": ";
  out += message;
  return out;
}

Diagnostic make_error(int line, int column, std::string message) {
  return Diagnostic{Severity::kError, line, column, std::move(message)};
}

Diagnostic make_warning(int line, int column, std::string message) {
  return Diagnostic{Severity::kWarning, line, column, std::move(message)};
}

std::string render_diagnostics(const std::vector<Diagnostic>& diags) {
  std::string out;
  for (const auto& d : diags) out += "  " + d.to_string() + "\n";
  return out;
}

int exit_code_for(const Status& status) {
  switch (status.code) {
    case StatusCode::kOk: return kExitOk;
    case StatusCode::kTimeout:
    case StatusCode::kBudgetExceeded:
    case StatusCode::kCancelled: return kExitBudget;
    case StatusCode::kParseError: return kExitParse;
    case StatusCode::kInvalidInput: return kExitParse;
    case StatusCode::kInternalError: return kExitInternal;
  }
  return kExitInternal;
}

}  // namespace l2l::util
