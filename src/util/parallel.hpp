#pragma once
// Fixed-size thread pool plus parallel_for / parallel_reduce facades: the
// concurrency substrate behind the multi-threaded router, placer solver,
// fault simulator, and batch graders. Chunk boundaries depend only on the
// grain (never on the thread count), and chunk partials are combined in
// chunk order, so every parallel result is bit-identical for any value of
// L2L_THREADS -- determinism is the substrate's contract, not an accident.

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace l2l::util {

/// Fixed pool of `num_threads - 1` workers; the calling thread is the
/// remaining lane. run() hands out task indices through a shared counter
/// and blocks until every task finished. The lowest-index exception is
/// rethrown on the caller.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes, calling thread included.
  int size() const;

  /// Execute task(0) ... task(num_tasks - 1) across the lanes. Reentrant
  /// calls from inside a task run inline on the calling lane (nested-use
  /// guard), so library code may parallelize without deadlock risk.
  void run(int num_tasks, const std::function<void(int)>& task);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Effective thread count: L2L_THREADS when set to a positive integer,
/// otherwise std::thread::hardware_concurrency() (at least 1).
int num_threads();

/// Override the thread count (n >= 1) or re-resolve it from the
/// environment (n <= 0). Rebuilds the shared pool; call between parallel
/// regions only (tests and benchmarks use this to sweep thread counts).
void set_num_threads(int n);

/// Invoke fn(chunk_begin, chunk_end) for consecutive [begin, end) chunks
/// of at most `grain` indices. Chunks run concurrently; a single chunk
/// (or a 1-thread pool, or a nested call) runs inline on the caller.
void parallel_for_chunks(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& fn);

/// Element-wise facade over parallel_for_chunks: fn(i) for i in [begin, end).
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t)>& fn);

/// Deterministic reduction: `chunk(b, e)` maps each grain-sized chunk to a
/// partial value; partials are combined with `combine` in ascending chunk
/// order on the calling thread. Because the chunking is grain-defined, the
/// result (floating point included) is identical at any thread count.
template <typename T, typename ChunkFn, typename CombineFn>
T parallel_reduce(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  T identity, ChunkFn chunk, CombineFn combine) {
  if (end <= begin) return identity;
  if (grain < 1) grain = 1;
  const std::int64_t n_chunks = (end - begin + grain - 1) / grain;
  std::vector<T> partial(static_cast<std::size_t>(n_chunks), identity);
  parallel_for_chunks(begin, end, grain,
                      [&](std::int64_t b, std::int64_t e) {
                        partial[static_cast<std::size_t>((b - begin) / grain)] =
                            chunk(b, e);
                      });
  T acc = identity;
  for (const T& p : partial) acc = combine(acc, p);
  return acc;
}

}  // namespace l2l::util
