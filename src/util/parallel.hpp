#pragma once
// Fixed-size thread pool plus parallel_for / parallel_reduce facades: the
// concurrency substrate behind the multi-threaded router, placer solver,
// fault simulator, and batch graders. Chunk boundaries depend only on the
// grain (never on the thread count), and chunk partials are combined in
// chunk order, so every parallel result is bit-identical for any value of
// L2L_THREADS -- determinism is the substrate's contract, not an accident.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace l2l::util {

/// Cooperative cancellation flag shared between a controller (which calls
/// cancel(), typically from another thread or a deadline check) and the
/// workers of a parallel region, which poll cancelled() between tasks.
/// Once fired the flag stays set; a cancelled parallel_for abandons its
/// remaining tasks, so the caller must discard the partial results.
class CancelToken {
 public:
  void cancel() noexcept { flag_.store(true, std::memory_order_release); }
  bool cancelled() const noexcept {
    return flag_.load(std::memory_order_acquire);
  }
  void reset() noexcept { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

/// Fixed pool of `num_threads - 1` workers; the calling thread is the
/// remaining lane. run() hands out task indices through a shared counter
/// and blocks until every task finished. The lowest-index exception is
/// rethrown on the caller.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes, calling thread included.
  int size() const;

  /// Execute task(0) ... task(num_tasks - 1) across the lanes. Reentrant
  /// calls from inside a task run inline on the calling lane (nested-use
  /// guard), so library code may parallelize without deadlock risk.
  /// When `cancel` is non-null and fires, lanes keep draining the index
  /// counter but stop executing task bodies -- the call still returns
  /// promptly and no lane is left blocked.
  void run(int num_tasks, const std::function<void(int)>& task,
           const CancelToken* cancel = nullptr);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Effective thread count: L2L_THREADS when set to a positive integer,
/// otherwise std::thread::hardware_concurrency() (at least 1).
int num_threads();

/// Override the thread count (n >= 1) or re-resolve it from the
/// environment (n <= 0). Rebuilds the shared pool; call between parallel
/// regions only (tests and benchmarks use this to sweep thread counts).
void set_num_threads(int n);

/// Invoke fn(chunk_begin, chunk_end) for consecutive [begin, end) chunks
/// of at most `grain` indices. Chunks run concurrently; a single chunk
/// (or a 1-thread pool, or a nested call) runs inline on the caller.
/// A fired `cancel` token skips the chunks not yet started (partial
/// output -- only meaningful when the caller is abandoning the result).
void parallel_for_chunks(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& fn,
    const CancelToken* cancel = nullptr);

/// Element-wise facade over parallel_for_chunks: fn(i) for i in [begin, end).
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t)>& fn,
                  const CancelToken* cancel = nullptr);

/// Deterministic reduction: `chunk(b, e)` maps each grain-sized chunk to a
/// partial value; partials are combined with `combine` in ascending chunk
/// order on the calling thread. Because the chunking is grain-defined, the
/// result (floating point included) is identical at any thread count.
template <typename T, typename ChunkFn, typename CombineFn>
T parallel_reduce(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  T identity, ChunkFn chunk, CombineFn combine) {
  if (end <= begin) return identity;
  if (grain < 1) grain = 1;
  const std::int64_t n_chunks = (end - begin + grain - 1) / grain;
  std::vector<T> partial(static_cast<std::size_t>(n_chunks), identity);
  parallel_for_chunks(begin, end, grain,
                      [&](std::int64_t b, std::int64_t e) {
                        partial[static_cast<std::size_t>((b - begin) / grain)] =
                            chunk(b, e);
                      });
  T acc = identity;
  for (const T& p : partial) acc = combine(acc, p);
  return acc;
}

}  // namespace l2l::util
