#pragma once
// Resource guards for the long-running engines: a Budget bundles an
// optional wall-clock deadline, an optional step budget, and an optional
// cooperative CancelToken. Every engine that can spin unbounded (SAT,
// BDD construction, negotiated routing, CG placement, the full flow)
// accepts a `const Budget*` and terminates cleanly -- partial result plus
// a Status -- instead of hanging on adversarial input.
//
// Determinism contract: step budgets are consumed at deterministic
// algorithmic boundaries (SAT conflicts, BDD node creations, router
// negotiation iterations, placer region solves), never per wall-clock
// tick, so a Budget with only a step limit yields bit-identical results
// at any L2L_THREADS value. Deadlines and cancellation are inherently
// racy; a run that trips them must be treated as abandoned, not graded.
//
// The engine-by-engine step units:
//   sat::Solver        1 step per propagation (checked at conflicts)
//   bdd::Manager       1 step per freshly allocated node
//   route::route_all   1 step per negotiation / rip-up iteration
//   place_quadratic    1 step per region solved
//   flow::run_flow     passes the budget through to the stages above

#include <chrono>
#include <cstdint>
#include <memory>

#include "util/parallel.hpp"
#include "util/status.hpp"

namespace l2l::util {

class Budget {
 public:
  /// Default construction = unlimited (no deadline, no limit, no token).
  Budget();

  /// Movable (the factories below return by value) but not copyable:
  /// two budgets silently sharing a step count would be a bug. Moving a
  /// budget that engines are concurrently consuming is undefined.
  Budget(Budget&& other) noexcept;
  Budget& operator=(Budget&& other) noexcept;
  Budget(const Budget&) = delete;
  Budget& operator=(const Budget&) = delete;

  static Budget unlimited() { return Budget(); }
  static Budget with_deadline_ms(std::int64_t ms) {
    Budget b;
    b.set_deadline_ms(ms);
    return b;
  }
  static Budget with_step_limit(std::int64_t steps) {
    Budget b;
    b.set_step_limit(steps);
    return b;
  }

  /// Deadline `ms` milliseconds from now (<= 0 expires immediately).
  Budget& set_deadline_ms(std::int64_t ms);
  /// Allow at most `steps` units of work (engine-specific unit above).
  Budget& set_step_limit(std::int64_t steps);
  Budget& set_cancel_token(std::shared_ptr<CancelToken> token);

  bool has_deadline() const { return has_deadline_; }
  bool has_step_limit() const { return step_limit_ >= 0; }

  /// The token (created on demand), for wiring into parallel_for or for
  /// cancelling this budget's run from another thread.
  const std::shared_ptr<CancelToken>& cancel_token();
  /// Fire the cancellation token (creates it if absent).
  void cancel();

  /// Consume n steps. Returns false once the step limit is exhausted
  /// (the nth step that crosses the limit still "happened" -- engines
  /// check the return value and stop at their next safe point).
  bool consume(std::int64_t n = 1) const;

  std::int64_t steps_used() const;
  /// Remaining steps, or a large sentinel when unlimited.
  std::int64_t steps_remaining() const;

  /// True when any guard tripped: cancellation, step limit, or deadline.
  /// The deadline clock is only read every few calls (amortized), so this
  /// is cheap enough for per-iteration polling.
  bool exhausted() const;

  /// Why exhausted() is true (kOk when it is not). Order of precedence:
  /// cancellation, step limit, deadline.
  Status status() const;

 private:
  bool deadline_passed() const;

  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
  std::int64_t step_limit_ = -1;  // -1 = unlimited
  mutable std::atomic<std::int64_t> steps_used_{0};
  // Deadline polls are amortized: the steady_clock is read once per
  // kClockStride exhausted() calls, and a tripped deadline latches.
  mutable std::atomic<std::int64_t> polls_{0};
  mutable std::atomic<bool> deadline_tripped_{false};
  std::shared_ptr<CancelToken> token_;
};

}  // namespace l2l::util
