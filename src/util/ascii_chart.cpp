#include "util/ascii_chart.hpp"

#include <algorithm>
#include <cmath>

#include "util/strings.hpp"

namespace l2l::util {

std::string render_bar_chart(const std::vector<BarDatum>& data,
                             const BarChartOptions& opts) {
  double maxv = 0.0;
  std::size_t label_w = static_cast<std::size_t>(opts.label_width);
  for (const auto& d : data) {
    maxv = std::max(maxv, d.value);
    if (opts.label_width == 0) label_w = std::max(label_w, d.label.size());
  }
  std::string out;
  for (const auto& d : data) {
    std::string line = d.label;
    line.resize(label_w, ' ');
    line += " |";
    const int bar =
        maxv > 0 ? static_cast<int>(std::lround(d.value / maxv * opts.width))
                 : 0;
    line.append(static_cast<std::size_t>(bar), opts.fill);
    if (opts.show_value) {
      line += format(" %.6g", d.value);
      line += opts.value_suffix;
    }
    line += '\n';
    out += line;
  }
  return out;
}

std::string render_table(const std::vector<std::string>& header,
                         const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(header.size());
  for (std::size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
  for (const auto& row : rows)
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      std::string cell = c < row.size() ? row[c] : "";
      cell.resize(widths[c], ' ');
      line += cell;
      if (c + 1 < widths.size()) line += "  ";
    }
    while (!line.empty() && line.back() == ' ') line.pop_back();
    return line + "\n";
  };

  std::string out = emit_row(header);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule.append(widths[c], '-');
    if (c + 1 < widths.size()) rule += "  ";
  }
  out += rule + "\n";
  for (const auto& row : rows) out += emit_row(row);
  return out;
}

}  // namespace l2l::util
