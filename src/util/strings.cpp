#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <limits>

namespace l2l::util {

std::vector<std::string> split(std::string_view s, std::string_view delims) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && delims.find(s[i]) != std::string_view::npos) ++i;
    std::size_t j = i;
    while (j < s.size() && delims.find(s[j]) == std::string_view::npos) ++j;
    if (j > i) out.emplace_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  std::size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

namespace {

template <typename T>
std::optional<T> parse_integral(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  if (s.front() == '+') s.remove_prefix(1);  // from_chars rejects '+'
  T value{};
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

}  // namespace

std::optional<int> parse_int(std::string_view s) {
  return parse_integral<int>(s);
}

std::optional<long long> parse_int64(std::string_view s) {
  return parse_integral<long long>(s);
}

std::optional<double> parse_double(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  if (s.front() == '+') s.remove_prefix(1);
  double value{};
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  if (!std::isfinite(value)) return std::nullopt;
  return value;
}

}  // namespace l2l::util
