#pragma once
// Declarative command-line parsing for the tools/* front-ends. Before
// this existed each of the five portal mains hand-rolled the same
// `for (k = 1; k < argc; ...)` loop over the same shared flags
// (--metrics/--trace/--lint/--time-limit-ms/...), so adding one flag
// meant five slightly-divergent edits. A parser instance owns a flag
// table; tools register their specific flags plus the shared pack from
// tools/common_cli.hpp, then call parse().
//
// Deliberately tiny: boolean flags, value flags (string / validated
// non-negative i64), and positionals. Errors come back as util::Status
// (kInvalidInput) so mains keep their exception-free contract.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace l2l::util {

class ArgParser {
 public:
  /// --name (no value): sets *target.
  void flag(std::string name, bool* target, std::string help = {});

  /// --name VALUE: stores the raw string.
  void value(std::string name, std::string* target, std::string help = {});

  /// --name N: exception-free parse, rejects negatives; stores into
  /// *target (callers use -1 as "unset").
  void int64_value(std::string name, std::int64_t* target,
                   std::string help = {});

  /// --name VALUE with a custom consumer; return non-ok to reject.
  void value_fn(std::string name, std::function<Status(const std::string&)> fn,
                std::string help = {});

  /// Parse argv[1..). Unknown "--flags" are errors; everything else is
  /// collected into positionals(). Stops with kInvalidInput on a flag
  /// missing its value or failing validation.
  Status parse(int argc, char** argv);

  const std::vector<std::string>& positionals() const { return positionals_; }

  /// One "  --flag   help" line per registered flag, registration order.
  std::string help_text() const;

 private:
  struct Spec {
    std::string name;
    bool takes_value = false;
    bool* bool_target = nullptr;
    std::function<Status(const std::string&)> consume;
    std::string help;
  };
  std::vector<Spec> specs_;
  std::vector<std::string> positionals_;
};

}  // namespace l2l::util
