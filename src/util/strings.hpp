#pragma once
// Small string utilities shared by the text-based tool front-ends
// (BLIF/PLA/DIMACS parsers, the kbdd/sis script interpreters, graders).

#include <string>
#include <string_view>
#include <vector>

namespace l2l::util {

/// Split on any run of the given delimiter characters; empty tokens are
/// dropped (the behaviour every whitespace-separated EDA text format wants).
std::vector<std::string> split(std::string_view s,
                               std::string_view delims = " \t\r\n");

/// Strip leading and trailing whitespace.
std::string_view trim(std::string_view s);

/// ASCII lower-casing (formats in this repo are ASCII by construction).
std::string to_lower(std::string_view s);

/// True if `s` begins with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Join tokens with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace l2l::util
