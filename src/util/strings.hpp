#pragma once
// Small string utilities shared by the text-based tool front-ends
// (BLIF/PLA/DIMACS parsers, the kbdd/sis script interpreters, graders).

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace l2l::util {

/// Split on any run of the given delimiter characters; empty tokens are
/// dropped (the behaviour every whitespace-separated EDA text format wants).
std::vector<std::string> split(std::string_view s,
                               std::string_view delims = " \t\r\n");

/// Strip leading and trailing whitespace.
std::string_view trim(std::string_view s);

/// ASCII lower-casing (formats in this repo are ASCII by construction).
std::string to_lower(std::string_view s);

/// True if `s` begins with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Join tokens with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Exception-free integer parse: the whole token must be a decimal integer
/// that fits an int, else nullopt. The hardened parsers use this instead
/// of std::stoi, which throws on garbage and on overflow.
std::optional<int> parse_int(std::string_view s);

/// Exception-free i64 parse (same contract as parse_int).
std::optional<long long> parse_int64(std::string_view s);

/// Exception-free floating-point parse: whole token, finite result.
std::optional<double> parse_double(std::string_view s);

}  // namespace l2l::util
