#pragma once
// Open-addressing hash containers for hot lookup tables.
//
// FlatMap/FlatSet keep keys (and values) in one contiguous power-of-two
// slot array with linear probing -- a lookup is a hash, a mask, and a
// short forward scan over adjacent memory, versus the per-node chasing of
// std::unordered_map buckets. There is no erase() and therefore no
// tombstones: tables that shed entries (e.g. the BDD unique table at GC)
// clear() and re-insert the survivors, which also re-packs probe chains.
//
// The caller designates one key value as the "empty" sentinel that marks
// unused slots; it must never be inserted. The BDD tables have natural
// sentinels (an all-zero key would violate their canonical-form
// invariants), as do node-index memos (index 0 is the terminal, handled
// before any table probe).

#include <cstddef>
#include <cstdint>
#include <vector>

namespace l2l::util {

/// SplitMix64 finalizer: turns integer keys into well-mixed hashes.
struct SplitMix64Hash {
  std::uint64_t operator()(std::uint64_t x) const {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
  }
};

template <typename Key, typename Value, typename Hash = SplitMix64Hash>
class FlatMap {
 public:
  explicit FlatMap(Key empty_key, std::size_t initial_capacity = 16)
      : empty_(empty_key) {
    std::size_t cap = 16;
    while (cap < initial_capacity) cap *= 2;
    slots_.assign(cap, Slot{empty_, Value{}});
  }

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return slots_.size(); }

  /// Pointer to the mapped value, or nullptr when absent. Stays valid
  /// until the next insert() or clear().
  Value* find(const Key& k) {
    std::size_t i = index_of(k);
    while (!(slots_[i].key == empty_)) {
      if (slots_[i].key == k) return &slots_[i].value;
      i = (i + 1) & (slots_.size() - 1);
    }
    return nullptr;
  }
  const Value* find(const Key& k) const {
    return const_cast<FlatMap*>(this)->find(k);
  }

  /// Insert or overwrite.
  void insert(const Key& k, const Value& v) {
    maybe_grow();
    std::size_t i = index_of(k);
    while (!(slots_[i].key == empty_)) {
      if (slots_[i].key == k) {
        slots_[i].value = v;
        return;
      }
      i = (i + 1) & (slots_.size() - 1);
    }
    slots_[i] = Slot{k, v};
    ++size_;
  }

  /// Drop every entry, keeping the slot array (and its capacity).
  void clear() {
    for (auto& s : slots_) s = Slot{empty_, Value{}};
    size_ = 0;
  }

 private:
  struct Slot {
    Key key;
    Value value;
  };

  std::size_t index_of(const Key& k) const {
    return static_cast<std::size_t>(Hash{}(k)) & (slots_.size() - 1);
  }

  void maybe_grow() {
    if ((size_ + 1) * 10 < slots_.size() * 7) return;  // < 0.7 load
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.size() * 2, Slot{empty_, Value{}});
    size_ = 0;
    for (const auto& s : old)
      if (!(s.key == empty_)) insert(s.key, s.value);
  }

  std::vector<Slot> slots_;
  Key empty_;
  std::size_t size_ = 0;
};

template <typename Key, typename Hash = SplitMix64Hash>
class FlatSet {
  struct Unit {};

 public:
  explicit FlatSet(Key empty_key, std::size_t initial_capacity = 16)
      : map_(empty_key, initial_capacity) {}

  std::size_t size() const { return map_.size(); }
  bool contains(const Key& k) const { return map_.find(k) != nullptr; }

  /// True when k was newly added.
  bool insert(const Key& k) {
    if (map_.find(k) != nullptr) return false;
    map_.insert(k, Unit{});
    return true;
  }

  void clear() { map_.clear(); }

 private:
  FlatMap<Key, Unit, Hash> map_;
};

}  // namespace l2l::util
