#include "util/log.hpp"

#include <cstdio>

namespace l2l::util {
namespace {
LogLevel g_level = LogLevel::kInfo;

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void log(LogLevel level, std::string_view msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  std::fprintf(stderr, "[%s] %.*s\n", tag(level),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace l2l::util
