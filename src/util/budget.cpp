#include "util/budget.hpp"

#include <limits>

#include "util/strings.hpp"

namespace l2l::util {
namespace {
/// Steady-clock reads per exhausted() poll: one read every stride calls.
constexpr std::int64_t kClockStride = 64;
}  // namespace

Budget::Budget() = default;

Budget::Budget(Budget&& other) noexcept
    : deadline_(other.deadline_),
      has_deadline_(other.has_deadline_),
      step_limit_(other.step_limit_),
      steps_used_(other.steps_used_.load(std::memory_order_relaxed)),
      polls_(other.polls_.load(std::memory_order_relaxed)),
      deadline_tripped_(
          other.deadline_tripped_.load(std::memory_order_relaxed)),
      token_(std::move(other.token_)) {}

Budget& Budget::operator=(Budget&& other) noexcept {
  deadline_ = other.deadline_;
  has_deadline_ = other.has_deadline_;
  step_limit_ = other.step_limit_;
  steps_used_.store(other.steps_used_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  polls_.store(other.polls_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  deadline_tripped_.store(
      other.deadline_tripped_.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  token_ = std::move(other.token_);
  return *this;
}

Budget& Budget::set_deadline_ms(std::int64_t ms) {
  deadline_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  has_deadline_ = true;
  deadline_tripped_.store(false, std::memory_order_relaxed);
  return *this;
}

Budget& Budget::set_step_limit(std::int64_t steps) {
  step_limit_ = steps < 0 ? -1 : steps;
  return *this;
}

Budget& Budget::set_cancel_token(std::shared_ptr<CancelToken> token) {
  token_ = std::move(token);
  return *this;
}

const std::shared_ptr<CancelToken>& Budget::cancel_token() {
  if (!token_) token_ = std::make_shared<CancelToken>();
  return token_;
}

void Budget::cancel() { cancel_token()->cancel(); }

bool Budget::consume(std::int64_t n) const {
  const std::int64_t used =
      steps_used_.fetch_add(n, std::memory_order_relaxed) + n;
  return step_limit_ < 0 || used <= step_limit_;
}

std::int64_t Budget::steps_used() const {
  return steps_used_.load(std::memory_order_relaxed);
}

std::int64_t Budget::steps_remaining() const {
  if (step_limit_ < 0) return std::numeric_limits<std::int64_t>::max();
  const std::int64_t left = step_limit_ - steps_used();
  return left > 0 ? left : 0;
}

bool Budget::deadline_passed() const {
  if (!has_deadline_) return false;
  if (deadline_tripped_.load(std::memory_order_relaxed)) return true;
  // Amortize the clock read; the first poll always reads so that an
  // already-expired deadline is seen before any work happens.
  const std::int64_t p = polls_.fetch_add(1, std::memory_order_relaxed);
  if (p % kClockStride != 0) return false;
  if (std::chrono::steady_clock::now() >= deadline_) {
    deadline_tripped_.store(true, std::memory_order_relaxed);
    return true;
  }
  return false;
}

bool Budget::exhausted() const {
  if (token_ && token_->cancelled()) return true;
  if (step_limit_ >= 0 && steps_used() >= step_limit_) return true;
  return deadline_passed();
}

Status Budget::status() const {
  if (token_ && token_->cancelled())
    return Status::cancelled("cancellation token fired");
  if (step_limit_ >= 0 && steps_used() >= step_limit_)
    return Status::budget(
        format("step limit %lld reached", static_cast<long long>(step_limit_)));
  if (has_deadline_ && deadline_tripped_.load(std::memory_order_relaxed))
    return Status::timeout("wall-clock deadline passed");
  // Re-read the clock directly (not amortized) so status() after a slow
  // final step reports the truth even if exhausted() was never polled.
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    deadline_tripped_.store(true, std::memory_order_relaxed);
    return Status::timeout("wall-clock deadline passed");
  }
  return Status::okay();
}

}  // namespace l2l::util
