#include "util/arg_parser.hpp"

#include "util/strings.hpp"

namespace l2l::util {

void ArgParser::flag(std::string name, bool* target, std::string help) {
  Spec s;
  s.name = std::move(name);
  s.bool_target = target;
  s.help = std::move(help);
  specs_.push_back(std::move(s));
}

void ArgParser::value(std::string name, std::string* target,
                      std::string help) {
  value_fn(
      std::move(name),
      [target](const std::string& v) {
        *target = v;
        return Status::okay();
      },
      std::move(help));
}

void ArgParser::int64_value(std::string name, std::int64_t* target,
                            std::string help) {
  const std::string flag_name = name;
  value_fn(
      std::move(name),
      [target, flag_name](const std::string& v) {
        const auto parsed = parse_int64(v);
        if (!parsed || *parsed < 0)
          return Status::invalid("bad " + flag_name + " value");
        *target = *parsed;
        return Status::okay();
      },
      std::move(help));
}

void ArgParser::value_fn(std::string name,
                         std::function<Status(const std::string&)> fn,
                         std::string help) {
  Spec s;
  s.name = std::move(name);
  s.takes_value = true;
  s.consume = std::move(fn);
  s.help = std::move(help);
  specs_.push_back(std::move(s));
}

Status ArgParser::parse(int argc, char** argv) {
  positionals_.clear();
  for (int k = 1; k < argc; ++k) {
    const std::string arg = argv[k];
    const Spec* match = nullptr;
    for (const auto& s : specs_)
      if (s.name == arg) {
        match = &s;
        break;
      }
    if (match == nullptr) {
      if (starts_with(arg, "--"))
        return Status::invalid("unknown flag " + arg);
      positionals_.push_back(arg);
      continue;
    }
    if (!match->takes_value) {
      *match->bool_target = true;
      continue;
    }
    if (k + 1 >= argc) return Status::invalid(arg + " needs a value");
    if (const Status st = match->consume(argv[++k]); !st.ok()) return st;
  }
  return Status::okay();
}

std::string ArgParser::help_text() const {
  std::string out;
  for (const auto& s : specs_) {
    out += "  " + s.name;
    if (s.takes_value) out += " <value>";
    if (!s.help.empty()) out += "  -- " + s.help;
    out += "\n";
  }
  return out;
}

}  // namespace l2l::util
