#pragma once
// The shared tool exit-code table -- one copy, used by every tools/* main
// and by the grading scripts that classify portal failures. Documented in
// DESIGN.md "Failure model & resource guards":
//
//   0 success, 1 processing failure (e.g. singular matrix, CG divergence),
//   2 usage / IO error, 3 malformed input, 4 resource budget exceeded,
//   5 internal error.
//
// minisat_lite layers the MiniSat convention on top: 10 SAT, 20 UNSAT.

namespace l2l::util {

struct Status;  // status.hpp

enum ExitCode : int {
  kExitOk = 0,
  kExitFail = 1,
  kExitUsage = 2,
  kExitParse = 3,
  kExitBudget = 4,
  kExitInternal = 5,
};

/// MiniSat's historical result codes, used only by minisat_lite.
enum MinisatExitCode : int {
  kExitSat = 10,
  kExitUnsat = 20,
};

/// StatusCode -> exit code under the table above.
int exit_code_for(const Status& status);

}  // namespace l2l::util
