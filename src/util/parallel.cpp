#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <thread>

namespace l2l::util {
namespace {

/// Set while a lane is executing pool work: reentrant parallel calls from
/// inside a task run inline instead of re-entering the (busy) pool.
thread_local bool t_in_parallel = false;

}  // namespace

struct ThreadPool::Impl {
  struct Job {
    const std::function<void(int)>* task = nullptr;
    const CancelToken* cancel = nullptr;
    int total = 0;
    std::atomic<int> next{0};       // next unclaimed task index
    std::atomic<int> remaining{0};  // tasks not yet finished
    int refs = 0;  // workers currently attached (guarded by Impl::mutex)
    std::mutex err_mutex;
    int err_index = std::numeric_limits<int>::max();
    std::exception_ptr error;
  };

  std::mutex mutex;
  std::condition_variable work_cv;  // wakes workers on a new job / shutdown
  std::condition_variable done_cv;  // wakes the caller when a job drains
  Job* job = nullptr;
  std::uint64_t epoch = 0;
  bool stop = false;
  std::vector<std::thread> workers;

  void process(Job& j) {
    t_in_parallel = true;
    for (;;) {
      const int i = j.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= j.total) break;
      try {
        // A fired token drains the counter without running the bodies, so
        // the job completes promptly and the bookkeeping stays exact.
        if (!j.cancel || !j.cancel->cancelled()) (*j.task)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(j.err_mutex);
        if (i < j.err_index) {
          j.err_index = i;
          j.error = std::current_exception();
        }
      }
      if (j.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard<std::mutex> lk(mutex);
        done_cv.notify_all();
      }
    }
    t_in_parallel = false;
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      Job* j = nullptr;
      {
        std::unique_lock<std::mutex> lk(mutex);
        work_cv.wait(lk, [&] { return stop || epoch != seen; });
        if (stop) return;
        seen = epoch;
        j = job;
        if (j) ++j->refs;  // keep the caller's stack Job alive for us
      }
      if (j) {
        process(*j);
        std::lock_guard<std::mutex> lk(mutex);
        --j->refs;
        done_cv.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(int num_threads) : impl_(std::make_unique<Impl>()) {
  if (num_threads < 1) num_threads = 1;
  impl_->workers.reserve(static_cast<std::size_t>(num_threads - 1));
  for (int t = 1; t < num_threads; ++t)
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(impl_->mutex);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (auto& w : impl_->workers) w.join();
}

int ThreadPool::size() const {
  return static_cast<int>(impl_->workers.size()) + 1;
}

void ThreadPool::run(int num_tasks, const std::function<void(int)>& task,
                     const CancelToken* cancel) {
  if (num_tasks <= 0) return;
  if (t_in_parallel || impl_->workers.empty()) {
    // Nested use or single-lane pool: run inline, first failure wins
    // (ascending order, so it is also the lowest-index failure).
    for (int i = 0; i < num_tasks; ++i) {
      if (cancel && cancel->cancelled()) break;
      task(i);
    }
    return;
  }
  Impl::Job job;
  job.task = &task;
  job.cancel = cancel;
  job.total = num_tasks;
  job.remaining.store(num_tasks, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(impl_->mutex);
    impl_->job = &job;
    ++impl_->epoch;
  }
  impl_->work_cv.notify_all();
  impl_->process(job);  // the caller is a lane too
  {
    std::unique_lock<std::mutex> lk(impl_->mutex);
    impl_->done_cv.wait(lk, [&] {
      return job.remaining.load(std::memory_order_acquire) == 0 &&
             job.refs == 0;
    });
    impl_->job = nullptr;
  }
  if (job.error) std::rethrow_exception(job.error);
}

namespace {

int resolve_thread_count() {
  if (const char* env = std::getenv("L2L_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 1024)
      return static_cast<int>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw ? static_cast<int>(hw) : 1;
}

std::mutex g_pool_mutex;
std::unique_ptr<ThreadPool> g_pool;
int g_count = 0;  // 0 = not yet resolved

ThreadPool& global_pool() {
  std::lock_guard<std::mutex> lk(g_pool_mutex);
  if (g_count == 0) g_count = resolve_thread_count();
  if (!g_pool) g_pool = std::make_unique<ThreadPool>(g_count);
  return *g_pool;
}

}  // namespace

int num_threads() {
  std::lock_guard<std::mutex> lk(g_pool_mutex);
  if (g_count == 0) g_count = resolve_thread_count();
  return g_count;
}

void set_num_threads(int n) {
  std::lock_guard<std::mutex> lk(g_pool_mutex);
  g_count = n >= 1 ? n : resolve_thread_count();
  g_pool.reset();
}

void parallel_for_chunks(
    std::int64_t begin, std::int64_t end, std::int64_t grain,
    const std::function<void(std::int64_t, std::int64_t)>& fn,
    const CancelToken* cancel) {
  if (end <= begin) return;
  if (grain < 1) grain = 1;
  const std::int64_t n_chunks = (end - begin + grain - 1) / grain;
  if (n_chunks == 1 || t_in_parallel || num_threads() == 1) {
    for (std::int64_t b = begin; b < end; b += grain) {
      if (cancel && cancel->cancelled()) return;
      fn(b, std::min(end, b + grain));
    }
    return;
  }
  const std::int64_t max_tasks =
      static_cast<std::int64_t>(std::numeric_limits<int>::max());
  const std::int64_t tasks = std::min(n_chunks, max_tasks);
  if (tasks < n_chunks) {
    // Astronomically many chunks: fold several per task, same boundaries.
    const std::int64_t per_task = (n_chunks + tasks - 1) / tasks;
    global_pool().run(static_cast<int>(tasks), [&](int t) {
      const std::int64_t first = static_cast<std::int64_t>(t) * per_task;
      const std::int64_t last = std::min(first + per_task, n_chunks);
      for (std::int64_t c = first; c < last; ++c) {
        if (cancel && cancel->cancelled()) return;
        const std::int64_t b = begin + c * grain;
        fn(b, std::min(end, b + grain));
      }
    }, cancel);
    return;
  }
  global_pool().run(static_cast<int>(tasks), [&](int c) {
    const std::int64_t b = begin + static_cast<std::int64_t>(c) * grain;
    fn(b, std::min(end, b + grain));
  }, cancel);
}

void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t)>& fn,
                  const CancelToken* cancel) {
  parallel_for_chunks(begin, end, grain,
                      [&](std::int64_t b, std::int64_t e) {
                        for (std::int64_t i = b; i < e; ++i) fn(i);
                      },
                      cancel);
}

}  // namespace l2l::util
