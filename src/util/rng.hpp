#pragma once
// Deterministic pseudo-random number generation.
//
// Everything in this repository that needs randomness (benchmark
// generators, the simulated-annealing placer, the MOOC cohort simulator)
// takes an explicit seeded Rng so that every test and bench is exactly
// reproducible run-to-run and machine-to-machine.

#include <cstdint>
#include <utility>

namespace l2l::util {

/// xoshiro256** by Blackman & Vigna: small, fast, high-quality, and --
/// unlike std::mt19937 plus std::uniform_*_distribution -- its output
/// stream is fully specified, so seeded results are portable.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  /// Re-initialise the state from a 64-bit seed via SplitMix64.
  void reseed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability p of returning true.
  bool next_bool(double p = 0.5) { return next_double() < p; }

  /// Standard normal variate (Box-Muller, deterministic).
  double next_gaussian();

  /// Fisher-Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& c) {
    const auto n = c.size();
    if (n < 2) return;
    for (auto i = n - 1; i > 0; --i) {
      const auto j = static_cast<decltype(i)>(next_below(i + 1));
      using std::swap;
      swap(c[i], c[j]);
    }
  }

 private:
  std::uint64_t s_[4] = {};
  bool have_gauss_ = false;
  double gauss_ = 0.0;
};

}  // namespace l2l::util
