#pragma once
// Placement facade: quadratic placement + legalization + HPWL in one
// call (the flow's placement stage). The facade owns the problem digest
// (placement_problem_digest) and the config digest over the grid and
// every QuadraticOptions knob.
//
// Engine id "place". A request carrying a Budget pointer bypasses the
// cache: the guard's trip point under a deadline is not reproducible.

#include "api/base.hpp"
#include "cache/digest.hpp"
#include "gen/placement_gen.hpp"
#include "place/legalize.hpp"
#include "place/quadratic.hpp"

namespace l2l::api {

/// time_limit_ms / use_cache come from RequestBase (api/base.hpp). The
/// engine's own deadline rides in options.budget; either guard disables
/// caching.
struct PlaceRequest : RequestBase {
  place::Grid grid;
  place::QuadraticOptions options;  ///< non-null budget disables caching
};

struct PlaceResult {
  place::GridPlacement placement;
  double hpwl = 0.0;
  bool cached = false;
};

PlaceResult place_and_legalize(const gen::PlacementProblem& problem,
                               const PlaceRequest& req);

/// Canonical digest of a placement problem (cells, pads, nets, die).
/// Shared with the placement grader facade so both key the same way.
cache::Digest128 placement_problem_digest(const gen::PlacementProblem& p);

}  // namespace l2l::api
