#include "api/espresso.hpp"

#include <sstream>

#include "api/detail.hpp"
#include "cache/cache.hpp"
#include "cubes/cover.hpp"
#include "espresso/minimize.hpp"
#include "espresso/pla.hpp"
#include "espresso/qm.hpp"

namespace l2l::api {

namespace {

constexpr std::uint64_t kEspressoFormatVersion = 1;

std::string serialize(const EspressoResult& res) {
  std::string out;
  cache::append_record(out, res.output);
  cache::append_record(out, res.stats_output);
  cache::append_i64(out, res.exit_code);
  detail::append_status(out, res.status);
  return out;
}

bool deserialize(std::string_view bytes, EspressoResult& res) {
  cache::RecordReader in(bytes);
  std::int64_t exit_code = 0;
  if (!in.next_string(res.output) || !in.next_string(res.stats_output) ||
      !in.next_i64(exit_code) || !detail::read_status(in, res.status) ||
      !in.complete())
    return false;
  res.exit_code = static_cast<int>(exit_code);
  return true;
}

EspressoResult run_minimizer(const EspressoRequest& req) {
  EspressoResult res;
  espresso::Pla pla;
  try {
    pla = espresso::parse_pla(req.pla);
  } catch (const std::exception& e) {
    res.status = util::Status::parse_error(e.what());
    res.exit_code = util::exit_code_for(res.status);
    return res;
  }
  std::ostringstream stats;
  for (auto& out : pla.outputs) {
    const int before_cubes = out.on.size();
    const int before_lits = out.on.num_literals();
    if (req.exact) {
      out.on = espresso::exact_minimize(out.on, out.dc, nullptr);
    } else {
      espresso::MinimizeOptions mopt;
      mopt.single_pass = req.single_pass;
      out.on = espresso::minimize(out.on, out.dc, mopt, nullptr);
    }
    out.dc = cubes::Cover(pla.num_inputs);  // consumed by minimization
    if (req.show_stats)
      stats << "# " << out.name << ": " << before_cubes << " cubes/"
            << before_lits << " lits -> " << out.on.size() << "/"
            << out.on.num_literals() << "\n";
  }
  res.output = espresso::write_pla(pla);
  res.stats_output = stats.str();
  res.exit_code = util::kExitOk;
  return res;
}

}  // namespace

EspressoResult minimize_pla(const EspressoRequest& req) {
  const bool cacheable = req.cacheable() && cache::enabled();
  cache::CacheKey key;
  if (cacheable) {
    key.engine = "espresso";
    key.input = cache::digest_bytes(req.pla);
    cache::Hasher h;
    h.u64(kEspressoFormatVersion)
        .boolean(req.exact)
        .boolean(req.single_pass)
        .boolean(req.show_stats);
    key.config = h.finish();
    if (const auto hit = cache::Cache::global().lookup(key)) {
      EspressoResult res;
      if (deserialize(*hit, res)) {
        res.cached = true;
        return res;
      }
    }
  }
  EspressoResult res = run_minimizer(req);
  if (cacheable) cache::Cache::global().insert(key, serialize(res));
  return res;
}

}  // namespace l2l::api
