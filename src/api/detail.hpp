#pragma once
// Shared plumbing for the engine facades in src/api/: serialization of
// the cross-cutting value types (Status, Diagnostic) into the cache's
// length-prefixed record format, and the one cache round-trip helper
// every facade repeats (lookup; on miss compute + insert).
//
// Internal to the api module -- tools and subsystems include the facade
// headers (or the l2l/api.hpp umbrella), never this.

#include <string>
#include <vector>

#include "cache/cache.hpp"
#include "util/status.hpp"

namespace l2l::api::detail {

/// Append a Status as (code, message) records.
void append_status(std::string& out, const util::Status& status);
bool read_status(cache::RecordReader& in, util::Status& status);

/// Append a Diagnostic list as (count, then per-entry severity/line/
/// column/message) records.
void append_diagnostics(std::string& out,
                        const std::vector<util::Diagnostic>& diags);
bool read_diagnostics(cache::RecordReader& in,
                      std::vector<util::Diagnostic>& diags);

}  // namespace l2l::api::detail
