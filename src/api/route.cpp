#include "api/route.hpp"

#include "api/detail.hpp"
#include "cache/cache.hpp"
#include "route/solution.hpp"

namespace l2l::api {

namespace {

constexpr std::uint64_t kRouteFormatVersion = 1;

cache::Digest128 config_digest(const route::RouterOptions& opt) {
  cache::Hasher h;
  h.u64(kRouteFormatVersion)
      .f64(opt.costs.wire)
      .f64(opt.costs.via)
      .f64(opt.costs.bend)
      .f64(opt.costs.wrong_way)
      .boolean(opt.costs.preferred_directions)
      .boolean(opt.costs.use_astar)
      .boolean(opt.negotiated)
      .i32(opt.max_negotiation_iterations)
      .f64(opt.present_factor)
      .f64(opt.history_increment)
      .i32(opt.max_ripup_iterations);
  return h.finish();
}

std::string serialize(const route::RouteSolution& sol) {
  std::string out;
  cache::append_i64(out, static_cast<std::int64_t>(sol.nets.size()));
  for (const auto& net : sol.nets) {
    cache::append_i64(out, net.net_id);
    cache::append_i64(out, net.routed ? 1 : 0);
    cache::append_i64(out, static_cast<std::int64_t>(net.cells.size()));
    for (const auto& c : net.cells) {
      cache::append_i64(out, c.x);
      cache::append_i64(out, c.y);
      cache::append_i64(out, c.layer);
    }
  }
  cache::append_i64(out, sol.stats.routed);
  cache::append_i64(out, sol.stats.failed);
  cache::append_i64(out, sol.stats.ripups);
  cache::append_i64(out, sol.stats.negotiation_iterations);
  cache::append_f64(out, sol.stats.total_wire);
  cache::append_i64(out, sol.stats.total_vias);
  cache::append_i64(out, sol.stats.expansions);
  detail::append_status(out, sol.status);
  return out;
}

bool deserialize(std::string_view bytes, route::RouteSolution& sol) {
  cache::RecordReader in(bytes);
  std::int64_t num_nets = 0;
  if (!in.next_i64(num_nets) || num_nets < 0) return false;
  sol.nets.clear();
  sol.nets.reserve(static_cast<std::size_t>(num_nets));
  for (std::int64_t k = 0; k < num_nets; ++k) {
    route::NetRoute net;
    std::int64_t id = 0, routed = 0, cells = 0;
    if (!in.next_i64(id) || !in.next_i64(routed) || !in.next_i64(cells) ||
        cells < 0)
      return false;
    net.net_id = static_cast<int>(id);
    net.routed = routed != 0;
    net.cells.reserve(static_cast<std::size_t>(cells));
    for (std::int64_t c = 0; c < cells; ++c) {
      std::int64_t x = 0, y = 0, layer = 0;
      if (!in.next_i64(x) || !in.next_i64(y) || !in.next_i64(layer))
        return false;
      net.cells.push_back({static_cast<int>(x), static_cast<int>(y),
                           static_cast<int>(layer)});
    }
    sol.nets.push_back(std::move(net));
  }
  std::int64_t routed = 0, failed = 0, ripups = 0, iters = 0, vias = 0,
               expansions = 0;
  if (!in.next_i64(routed) || !in.next_i64(failed) || !in.next_i64(ripups) ||
      !in.next_i64(iters) || !in.next_f64(sol.stats.total_wire) ||
      !in.next_i64(vias) || !in.next_i64(expansions) ||
      !detail::read_status(in, sol.status) || !in.complete())
    return false;
  sol.stats.routed = static_cast<int>(routed);
  sol.stats.failed = static_cast<int>(failed);
  sol.stats.ripups = static_cast<int>(ripups);
  sol.stats.negotiation_iterations = static_cast<int>(iters);
  sol.stats.total_vias = static_cast<int>(vias);
  sol.stats.expansions = expansions;
  return true;
}

}  // namespace

RouteResult route_nets(const gen::RoutingProblem& problem,
                       const RouteRequest& req) {
  const bool cacheable = req.cacheable() && cache::enabled() &&
                         req.options.budget == nullptr;
  cache::CacheKey key;
  if (cacheable) {
    key.engine = "route";
    key.input = routing_problem_digest(problem);
    key.config = config_digest(req.options);
    if (const auto hit = cache::Cache::global().lookup(key)) {
      RouteResult res;
      if (deserialize(*hit, res.solution)) {
        res.cached = true;
        return res;
      }
    }
  }
  RouteResult res;
  res.solution = route::route_all(problem, req.options);
  if (cacheable) cache::Cache::global().insert(key, serialize(res.solution));
  return res;
}

cache::Digest128 routing_problem_digest(const gen::RoutingProblem& p) {
  return cache::digest_bytes(route::write_problem(p));
}

}  // namespace l2l::api
