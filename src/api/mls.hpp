#pragma once
// Multi-level synthesis facade (sis_lite's script.algebraic and the
// flow's synthesis stage). Two shapes of the same engine:
//
//  * optimize_blif: text in, text out -- the pure content-addressed form.
//  * optimize_network: in-place on a parsed Network, exactly like calling
//    mls::optimize directly. On a cache miss the network is optimized in
//    place (bit-for-bit the uncached code path); on a hit it is replaced
//    by the cached canonical BLIF. write_blif/parse_blif round-tripping
//    is the repo's canonicalization (the flow already starts with it), so
//    both paths yield the same network.
//
// Engine id "mls". The algebraic script is deterministic and unbudgeted:
// every request is cacheable.

#include <string>

#include "api/base.hpp"
#include "mls/script.hpp"
#include "network/network.hpp"
#include "util/status.hpp"

namespace l2l::api {

/// time_limit_ms / use_cache come from RequestBase (api/base.hpp). The
/// algebraic script has no internal wall-clock budget; a time limit only
/// marks the request uncacheable.
struct MlsRequest : RequestBase {
  std::string blif;  ///< canonical BLIF text of the input network
  mls::ScriptOptions options;
};

struct MlsResult {
  std::string blif;  ///< optimized network, write_blif text
  mls::ScriptStats stats;
  /// Non-ok (kParseError) when the input BLIF does not parse.
  util::Status status;
  bool cached = false;
};

MlsResult optimize_blif(const MlsRequest& req);

struct MlsNetworkResult {
  mls::ScriptStats stats;
  bool cached = false;
};

/// In-place variant for callers already holding a Network.
MlsNetworkResult optimize_network(network::Network& net,
                                  const mls::ScriptOptions& opt,
                                  bool use_cache = true);

}  // namespace l2l::api
