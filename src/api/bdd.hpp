#pragma once
// BDD facade: runs a kbdd_lite calculator script and returns everything
// the calculator printed. The script interpreter itself (variable
// environment, expression parser, the command set documented in
// tools/kbdd_lite.cpp) lives behind this facade so the tool main is just
// flag handling + I/O.
//
// Engine id "bdd". Node-limited runs are deterministic and cacheable
// (node_limit joins the config digest); wall-clock-limited runs bypass
// the cache.

#include <cstdint>
#include <string>

#include "api/base.hpp"
#include "util/status.hpp"

namespace l2l::api {

/// time_limit_ms / use_cache come from RequestBase (api/base.hpp).
struct BddScriptRequest : RequestBase {
  std::string script;
  std::int64_t node_limit = -1;  ///< -1 = unlimited (budget steps)
};

struct BddScriptResult {
  /// Everything the calculator printed, error lines included (the portal
  /// prints script errors to stdout, anchored "error on line N: ...").
  std::string output;
  /// 0 ok, 3 malformed script, 4 resource budget exceeded.
  int exit_code = 0;
  util::Status status;
  bool cached = false;
};

BddScriptResult run_bdd_script(const BddScriptRequest& req);

}  // namespace l2l::api
