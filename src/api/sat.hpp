#pragma once
// SAT facade: the one entry point behind the minisat_lite portal. A
// SatRequest carries the DIMACS text plus every knob that changes the
// answer; the facade owns cache keying (engine id "sat") so callers
// never hand-roll digests. Results replayed from the cache are
// byte-identical to a fresh solve, including the exit code.
//
// Wall-clock-limited requests (time_limit_ms >= 0) bypass the cache:
// where a deadline stops the solver is not reproducible, so such
// results are never stored or replayed. The deterministic guards
// (prop_limit, conflict_limit) are part of the config digest instead.

#include <cstdint>
#include <string>

#include "api/base.hpp"
#include "sat/solver.hpp"
#include "util/status.hpp"

namespace l2l::api {

/// time_limit_ms / use_cache come from RequestBase (api/base.hpp).
struct SatRequest : RequestBase {
  std::string dimacs;          ///< the canonical input text
  sat::SolverOptions options;  ///< heuristics + deterministic limits
  std::int64_t prop_limit = -1;  ///< -1 = unlimited (budget steps)
  bool show_stats = false;       ///< append the "c decisions ..." line
};

struct SatResult {
  /// Exactly what minisat_lite prints to stdout: the result/model text
  /// plus the optional stats comment line.
  std::string output;
  /// 10 SAT, 20 UNSAT, 0 clean indeterminate, else the shared exit table
  /// applied to `status`.
  int exit_code = 0;
  /// Non-ok on parse errors and tripped resource guards.
  util::Status status;
  bool cached = false;
};

SatResult solve_sat(const SatRequest& req);

}  // namespace l2l::api
