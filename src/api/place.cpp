#include "api/place.hpp"

#include "cache/cache.hpp"
#include "place/wirelength.hpp"

namespace l2l::api {

namespace {

constexpr std::uint64_t kPlaceFormatVersion = 1;

cache::Digest128 config_digest(const PlaceRequest& req) {
  cache::Hasher h;
  h.u64(kPlaceFormatVersion)
      .i32(req.grid.rows)
      .i32(req.grid.sites_per_row)
      .f64(req.grid.width)
      .f64(req.grid.height)
      .i32(static_cast<int>(req.options.net_model))
      .i32(req.options.min_region_cells)
      .i32(req.options.max_levels)
      .f64(req.options.cg_tolerance);
  return h.finish();
}

std::string serialize(const PlaceResult& res) {
  std::string out;
  cache::append_i64(out, static_cast<std::int64_t>(res.placement.col.size()));
  for (const int c : res.placement.col) cache::append_i64(out, c);
  for (const int r : res.placement.row) cache::append_i64(out, r);
  cache::append_f64(out, res.hpwl);
  return out;
}

bool deserialize(std::string_view bytes, PlaceResult& res) {
  cache::RecordReader in(bytes);
  std::int64_t n = 0;
  if (!in.next_i64(n) || n < 0) return false;
  res.placement.col.resize(static_cast<std::size_t>(n));
  res.placement.row.resize(static_cast<std::size_t>(n));
  for (auto& c : res.placement.col) {
    std::int64_t v = 0;
    if (!in.next_i64(v)) return false;
    c = static_cast<int>(v);
  }
  for (auto& r : res.placement.row) {
    std::int64_t v = 0;
    if (!in.next_i64(v)) return false;
    r = static_cast<int>(v);
  }
  return in.next_f64(res.hpwl) && in.complete();
}

}  // namespace

PlaceResult place_and_legalize(const gen::PlacementProblem& problem,
                               const PlaceRequest& req) {
  const bool cacheable = req.cacheable() && cache::enabled() &&
                         req.options.budget == nullptr;
  cache::CacheKey key;
  if (cacheable) {
    key.engine = "place";
    key.input = placement_problem_digest(problem);
    key.config = config_digest(req);
    if (const auto hit = cache::Cache::global().lookup(key)) {
      PlaceResult res;
      if (deserialize(*hit, res)) {
        res.cached = true;
        return res;
      }
    }
  }
  PlaceResult res;
  const auto continuous = place::place_quadratic(problem, req.options);
  res.placement = place::legalize(problem, continuous, req.grid);
  res.hpwl = place::hpwl(problem, res.placement.to_continuous(req.grid));
  if (cacheable) cache::Cache::global().insert(key, serialize(res));
  return res;
}

cache::Digest128 placement_problem_digest(const gen::PlacementProblem& p) {
  cache::Hasher h;
  h.i32(p.num_cells).f64(p.width).f64(p.height);
  h.i64(static_cast<std::int64_t>(p.pads.size()));
  for (const auto& pad : p.pads) h.f64(pad.x).f64(pad.y).str(pad.name);
  h.i64(static_cast<std::int64_t>(p.nets.size()));
  for (const auto& net : p.nets) {
    h.i64(static_cast<std::int64_t>(net.size()));
    for (const auto& pin : net) h.boolean(pin.is_pad).i32(pin.index);
  }
  return h.finish();
}

}  // namespace l2l::api
