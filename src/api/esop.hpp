#pragma once
// Exact ESOP synthesis facade (the esop_exact portal) -- the eighth
// engine behind l2l/api.hpp. Takes either a PLA text (every output is
// synthesized independently; don't-care cubes are treated as OFF and
// noted in the stats block) or a single raw truth-table row ("0110",
// LSB first), finds a minimum-term ESOP per output with the SAT engine
// in src/esop/, and returns the `.type esop` PLA text plus the
// per-output "# name: ..." stats block.
//
// Engine id "esop". The deterministic guards (max_terms, conflict_limit,
// prop_limit) are part of the config digest, so budget-limited partial
// results replay from the cache byte-identically; a wall-clock limit
// (time_limit_ms >= 0) makes the stopping point non-reproducible and
// bypasses the cache entirely.

#include <cstdint>
#include <string>

#include "api/base.hpp"
#include "util/status.hpp"

namespace l2l::api {

/// time_limit_ms / use_cache come from RequestBase (api/base.hpp).
struct EsopRequest : RequestBase {
  std::string input;           ///< PLA text, or one 0/1 truth-table row
  int max_terms = -1;          ///< cap on terms per output (-1 = derive)
  std::int64_t conflict_limit = -1;  ///< per SAT query (-1 = unlimited)
  std::int64_t prop_limit = -1;      ///< total propagations (budget steps)
  bool show_stats = false;           ///< fill EsopResult::stats_output
};

struct EsopResult {
  std::string output;        ///< `.type esop` PLA text (stdout)
  std::string stats_output;  ///< "# <name>: ..." lines (stderr), or empty
  int terms = 0;             ///< total terms across outputs
  bool minimal = false;      ///< every output proven minimal
  /// 0 ok, 3 malformed/oversized input, 4 budget/term-cap exhausted,
  /// 5 internal error (a decoded model failed verification).
  int exit_code = 0;
  util::Status status;
  bool cached = false;
};

EsopResult synthesize_esop(const EsopRequest& req);

}  // namespace l2l::api
