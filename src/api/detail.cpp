#include "api/detail.hpp"

namespace l2l::api::detail {

void append_status(std::string& out, const util::Status& status) {
  cache::append_i64(out, static_cast<std::int64_t>(status.code));
  cache::append_record(out, status.message);
}

bool read_status(cache::RecordReader& in, util::Status& status) {
  std::int64_t code = 0;
  std::string message;
  if (!in.next_i64(code) || !in.next_string(message)) return false;
  if (code < 0 || code > static_cast<std::int64_t>(
                             util::StatusCode::kInternalError))
    return false;
  status.code = static_cast<util::StatusCode>(code);
  status.message = std::move(message);
  return true;
}

void append_diagnostics(std::string& out,
                        const std::vector<util::Diagnostic>& diags) {
  cache::append_i64(out, static_cast<std::int64_t>(diags.size()));
  for (const auto& d : diags) {
    cache::append_i64(out, static_cast<std::int64_t>(d.severity));
    cache::append_i64(out, d.line);
    cache::append_i64(out, d.column);
    cache::append_record(out, d.message);
  }
}

bool read_diagnostics(cache::RecordReader& in,
                      std::vector<util::Diagnostic>& diags) {
  std::int64_t count = 0;
  if (!in.next_i64(count) || count < 0) return false;
  diags.clear();
  for (std::int64_t k = 0; k < count; ++k) {
    std::int64_t severity = 0, line = 0, column = 0;
    std::string message;
    if (!in.next_i64(severity) || !in.next_i64(line) ||
        !in.next_i64(column) || !in.next_string(message))
      return false;
    if (severity < 0 ||
        severity > static_cast<std::int64_t>(util::Severity::kNote))
      return false;
    util::Diagnostic d;
    d.severity = static_cast<util::Severity>(severity);
    d.line = static_cast<int>(line);
    d.column = static_cast<int>(column);
    d.message = std::move(message);
    diags.push_back(std::move(d));
  }
  return true;
}

}  // namespace l2l::api::detail
