#include "api/bdd.hpp"

#include <cctype>
#include <map>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "api/detail.hpp"
#include "bdd/bdd.hpp"
#include "bdd/manager.hpp"
#include "cache/cache.hpp"
#include "util/budget.hpp"
#include "util/strings.hpp"

namespace l2l::api {

namespace {

constexpr std::uint64_t kBddFormatVersion = 1;

using bdd::Bdd;
using bdd::Manager;

// The kbdd_lite script interpreter (see the command table in
// tools/kbdd_lite.cpp). One instance per script run; state is the
// declared variable order plus the named-function environment.
class Calculator {
 public:
  void set_budget(const util::Budget* budget) { mgr_.set_budget(budget); }

  int run(std::istream& in, std::ostream& out, util::Status& status) {
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      const auto t = std::string(util::trim(line));
      if (t.empty() || t[0] == '#') continue;
      try {
        execute(t, out);
      } catch (const util::BudgetExceededError& e) {
        out << "error on line " << lineno << ": " << e.what() << "\n";
        status = e.status();
        return util::exit_code_for(e.status());
      } catch (const std::exception& e) {
        out << "error on line " << lineno << ": " << e.what() << "\n";
        status = util::Status::parse_error(e.what());
        return util::kExitParse;
      }
    }
    return util::kExitOk;
  }

 private:
  void execute(const std::string& cmd, std::ostream& out) {
    const auto tok = util::split(cmd);
    if (tok[0] == "var") {
      for (std::size_t k = 1; k < tok.size(); ++k) {
        if (vars_.count(tok[k]))
          throw std::runtime_error("duplicate var " + tok[k]);
        vars_[tok[k]] = mgr_.new_var();
        order_.push_back(tok[k]);
      }
      return;
    }
    if (tok.size() >= 3 && tok[1] == "=") {
      std::string expr;
      for (std::size_t k = 2; k < tok.size(); ++k) expr += tok[k] + " ";
      fns_.insert_or_assign(tok[0], parse_expr(expr));
      return;
    }
    if (tok[0] == "print") {
      const Bdd f = lookup(tok.at(1));
      if (mgr_.num_vars() > 12)
        throw std::runtime_error("too many vars to print");
      out << "minterms of " << tok[1] << ":";
      std::vector<bool> a(static_cast<std::size_t>(mgr_.num_vars()));
      for (std::uint64_t m = 0; m < (1ull << mgr_.num_vars()); ++m) {
        for (int v = 0; v < mgr_.num_vars(); ++v)
          a[static_cast<std::size_t>(v)] = (m >> v) & 1;
        if (f.eval(a)) out << " " << m;
      }
      out << "\n";
      return;
    }
    if (tok[0] == "satcount") {
      out << tok.at(1) << " has " << lookup(tok[1]).sat_count()
          << " satisfying assignments\n";
      return;
    }
    if (tok[0] == "onesat") {
      const auto s = lookup(tok.at(1)).one_sat();
      if (!s) {
        out << tok[1] << " UNSAT\n";
        return;
      }
      out << tok[1] << " SAT:";
      for (std::size_t v = 0; v < s->size(); ++v) {
        if ((*s)[v] < 0) continue;
        out << " " << order_[v] << "=" << static_cast<int>((*s)[v]);
      }
      out << "\n";
      return;
    }
    if (tok[0] == "equal") {
      out << tok.at(1) << " and " << tok.at(2) << " are "
          << (lookup(tok[1]) == lookup(tok[2]) ? "EQUAL" : "NOT EQUAL")
          << "\n";
      return;
    }
    if (tok[0] == "size") {
      out << tok.at(1) << " has " << lookup(tok[1]).size() << " BDD nodes\n";
      return;
    }
    if (tok[0] == "support") {
      out << "support(" << tok.at(1) << "):";
      for (const int v : lookup(tok[1]).support())
        out << " " << order_[static_cast<std::size_t>(v)];
      out << "\n";
      return;
    }
    if (tok[0] == "cofactor") {
      fns_.insert_or_assign(
          "it",
          lookup(tok.at(1)).cofactor(var_index(tok.at(2)), tok.at(3) == "1"));
      out << "it = cofactor\n";
      return;
    }
    if (tok[0] == "exists" || tok[0] == "forall") {
      const Bdd f = lookup(tok.at(1));
      const int v = var_index(tok.at(2));
      fns_.insert_or_assign("it",
                            tok[0] == "exists" ? f.exists(v) : f.forall(v));
      out << "it = " << tok[0] << "\n";
      return;
    }
    if (tok[0] == "dot") {
      out << lookup(tok.at(1)).to_dot(tok[1]);
      return;
    }
    throw std::runtime_error("unknown command " + tok[0]);
  }

  int var_index(const std::string& name) const {
    const auto it = vars_.find(name);
    if (it == vars_.end()) throw std::runtime_error("unknown var " + name);
    return it->second;
  }

  Bdd lookup(const std::string& name) {
    if (const auto it = fns_.find(name); it != fns_.end()) return it->second;
    if (const auto it = vars_.find(name); it != vars_.end())
      return mgr_.var(it->second);
    throw std::runtime_error("unknown function " + name);
  }

  // Recursive descent over:  or := xor ('|' xor)* ; xor := and ('^' and)* ;
  // and := unary ('&' unary)* ; unary := '!' unary | atom.
  Bdd parse_expr(const std::string& text) {
    pos_ = 0;
    text_ = text;
    Bdd r = parse_or();
    skip_ws();
    if (pos_ != text_.size()) throw std::runtime_error("trailing junk in expr");
    return r;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }
  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  Bdd parse_or() {
    Bdd r = parse_xor();
    while (eat('|')) r = r | parse_xor();
    return r;
  }
  Bdd parse_xor() {
    Bdd r = parse_and();
    while (eat('^')) r = r ^ parse_and();
    return r;
  }
  Bdd parse_and() {
    Bdd r = parse_unary();
    while (eat('&')) r = r & parse_unary();
    return r;
  }
  Bdd parse_unary() {
    if (eat('!')) return !parse_unary();
    if (eat('(')) {
      Bdd r = parse_or();
      if (!eat(')')) throw std::runtime_error("missing ')'");
      return r;
    }
    skip_ws();
    if (pos_ < text_.size() && (text_[pos_] == '0' || text_[pos_] == '1')) {
      const bool one = text_[pos_] == '1';
      ++pos_;
      return one ? mgr_.one() : mgr_.zero();
    }
    std::string name;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_'))
      name += text_[pos_++];
    if (name.empty()) throw std::runtime_error("expected identifier");
    return lookup(name);
  }

  Manager mgr_{0};
  std::map<std::string, int> vars_;
  std::vector<std::string> order_;
  std::map<std::string, Bdd> fns_;
  std::string text_;
  std::size_t pos_ = 0;
};

std::string serialize(const BddScriptResult& res) {
  std::string out;
  cache::append_record(out, res.output);
  cache::append_i64(out, res.exit_code);
  detail::append_status(out, res.status);
  return out;
}

bool deserialize(std::string_view bytes, BddScriptResult& res) {
  cache::RecordReader in(bytes);
  std::int64_t exit_code = 0;
  if (!in.next_string(res.output) || !in.next_i64(exit_code) ||
      !detail::read_status(in, res.status) || !in.complete())
    return false;
  res.exit_code = static_cast<int>(exit_code);
  return true;
}

BddScriptResult run_script(const BddScriptRequest& req) {
  BddScriptResult res;
  Calculator calc;
  util::Budget budget;
  if (req.node_limit >= 0 || req.time_limit_ms >= 0) {
    if (req.node_limit >= 0) budget.set_step_limit(req.node_limit);
    if (req.time_limit_ms >= 0) budget.set_deadline_ms(req.time_limit_ms);
    calc.set_budget(&budget);
  }
  std::istringstream in(req.script);
  std::ostringstream out;
  res.exit_code = calc.run(in, out, res.status);
  res.output = out.str();
  return res;
}

}  // namespace

BddScriptResult run_bdd_script(const BddScriptRequest& req) {
  const bool cacheable = req.cacheable() && cache::enabled();
  cache::CacheKey key;
  if (cacheable) {
    key.engine = "bdd";
    key.input = cache::digest_bytes(req.script);
    cache::Hasher h;
    h.u64(kBddFormatVersion).i64(req.node_limit);
    key.config = h.finish();
    if (const auto hit = cache::Cache::global().lookup(key)) {
      BddScriptResult res;
      if (deserialize(*hit, res)) {
        res.cached = true;
        return res;
      }
    }
  }
  BddScriptResult res = run_script(req);
  if (cacheable) cache::Cache::global().insert(key, serialize(res));
  return res;
}

}  // namespace l2l::api
