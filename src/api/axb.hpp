#pragma once
// Linear-system facade (the axb portal, Fig. 4 of the paper): parses the
// "n / A / b" text, solves with Gaussian elimination or conjugate
// gradient, and returns the exact stdout/stderr text the tool prints.
//
// Engine id "axb". CG under a wall-clock deadline bypasses the cache;
// everything else is deterministic and cacheable.

#include <cstdint>
#include <string>

#include "api/base.hpp"
#include "util/status.hpp"

namespace l2l::api {

/// time_limit_ms / use_cache come from RequestBase (api/base.hpp); the
/// wall-clock deadline is honored by the CG path only.
struct AxbRequest : RequestBase {
  std::string input;  ///< the "n / A / b" text
  bool use_cg = false;
};

struct AxbResult {
  std::string output;        ///< "x = ..." solution text (stdout)
  std::string error_output;  ///< full "error: ..." line(s) (stderr)
  /// 0 ok, 1 solve failure (singular / CG divergence), 3 malformed
  /// input, 4 budget exceeded.
  int exit_code = 0;
  util::Status status;
  bool cached = false;
};

AxbResult solve_axb(const AxbRequest& req);

}  // namespace l2l::api
