#pragma once
// Linear-system facade (the axb portal, Fig. 4 of the paper): parses the
// "n / A / b" text, solves with Gaussian elimination or conjugate
// gradient, and returns the exact stdout/stderr text the tool prints.
//
// Engine id "axb". CG under a wall-clock deadline bypasses the cache;
// everything else is deterministic and cacheable.

#include <cstdint>
#include <string>

#include "util/status.hpp"

namespace l2l::api {

struct AxbRequest {
  std::string input;  ///< the "n / A / b" text
  bool use_cg = false;
  std::int64_t time_limit_ms = -1;  ///< CG only; >= 0 disables cache
  bool use_cache = true;
};

struct AxbResult {
  std::string output;        ///< "x = ..." solution text (stdout)
  std::string error_output;  ///< full "error: ..." line(s) (stderr)
  /// 0 ok, 1 solve failure (singular / CG divergence), 3 malformed
  /// input, 4 budget exceeded.
  int exit_code = 0;
  util::Status status;
  bool cached = false;
};

AxbResult solve_axb(const AxbRequest& req);

}  // namespace l2l::api
