#pragma once
// Auto-grader facades: the cached text-in/grade-out entry points the
// grading queue, batch drivers, and benchmarks share. The facade owns
// the keying -- submission text digested as the input, problem digest
// folded into the config together with the deterministic limits -- so
// "the same submission against the same problem is graded once" holds
// across every consumer of these functions.
//
// Engine ids "grader.route" / "grader.place". Wall-clock-limited grading
// bypasses the cache (a deadline's trip point is not reproducible); the
// deterministic step_limit joins the config digest.

#include <cstdint>
#include <string>

#include "api/base.hpp"
#include "cache/digest.hpp"
#include "gen/placement_gen.hpp"
#include "gen/routing_gen.hpp"
#include "grader/place_grader.hpp"
#include "grader/route_grader.hpp"

namespace l2l::api {

/// time_limit_ms / use_cache come from RequestBase (api/base.hpp).
struct RouteGradeRequest : RequestBase {
  std::string submission;
  std::int64_t step_limit = -1;  ///< budget steps (one per net graded)
};

struct RouteGradeResult {
  grader::RouteGrade grade;
  bool cached = false;
};

RouteGradeResult grade_route_submission(const gen::RoutingProblem& problem,
                                        const RouteGradeRequest& req);

/// Batch variant: the caller precomputes routing_problem_digest once and
/// reuses it for every submission against the same problem.
RouteGradeResult grade_route_submission(const gen::RoutingProblem& problem,
                                        const cache::Digest128& problem_digest,
                                        const RouteGradeRequest& req);

/// time_limit_ms / use_cache come from RequestBase (api/base.hpp); the
/// placement grader has no internal wall-clock budget, so a time limit
/// only marks the request uncacheable.
struct PlaceGradeRequest : RequestBase {
  std::string submission;
  double reference_hpwl = 0.0;
};

struct PlaceGradeResult {
  grader::PlaceGrade grade;
  bool cached = false;
};

PlaceGradeResult grade_place_submission(const gen::PlacementProblem& problem,
                                        const place::Grid& grid,
                                        const PlaceGradeRequest& req);

PlaceGradeResult grade_place_submission(const gen::PlacementProblem& problem,
                                        const place::Grid& grid,
                                        const cache::Digest128& problem_digest,
                                        const PlaceGradeRequest& req);

}  // namespace l2l::api
