#include "api/esop.hpp"

#include <sstream>
#include <string>
#include <vector>

#include "api/detail.hpp"
#include "cache/cache.hpp"
#include "cubes/cover.hpp"
#include "esop/esop.hpp"
#include "espresso/pla.hpp"
#include "tt/truth_table.hpp"
#include "util/budget.hpp"

namespace l2l::api {

namespace {

constexpr std::uint64_t kEsopFormatVersion = 1;

std::string serialize(const EsopResult& res) {
  std::string out;
  cache::append_record(out, res.output);
  cache::append_record(out, res.stats_output);
  cache::append_i64(out, res.terms);
  cache::append_i64(out, res.minimal ? 1 : 0);
  cache::append_i64(out, res.exit_code);
  detail::append_status(out, res.status);
  return out;
}

bool deserialize(std::string_view bytes, EsopResult& res) {
  cache::RecordReader in(bytes);
  std::int64_t terms = 0, minimal = 0, exit_code = 0;
  if (!in.next_string(res.output) || !in.next_string(res.stats_output) ||
      !in.next_i64(terms) || !in.next_i64(minimal) ||
      !in.next_i64(exit_code) || !detail::read_status(in, res.status) ||
      !in.complete())
    return false;
  res.terms = static_cast<int>(terms);
  res.minimal = minimal != 0;
  res.exit_code = static_cast<int>(exit_code);
  return true;
}

/// One function to synthesize: a name plus its care truth table.
struct Job {
  std::string name;
  tt::TruthTable f;
  int ignored_dc_cubes = 0;
};

/// Raw truth-table input: exactly one non-comment line of 0/1 characters
/// whose length is a power of two (LSB first, like tt::from_bits).
util::Status parse_truth_table_input(const std::string& text,
                                     std::vector<Job>& jobs) {
  std::istringstream in(text);
  std::string line, bits;
  while (std::getline(in, line)) {
    // Trim whitespace; skip blanks and '#' comments.
    const auto b = line.find_first_not_of(" \t\r");
    if (b == std::string::npos || line[b] == '#') continue;
    const auto e = line.find_last_not_of(" \t\r");
    if (!bits.empty())
      return util::Status::parse_error(
          "esop: truth-table input must be a single row of bits");
    bits = line.substr(b, e - b + 1);
  }
  if (bits.empty())
    return util::Status::parse_error("esop: empty input");
  for (const char c : bits)
    if (c != '0' && c != '1')
      return util::Status::parse_error(
          "esop: truth-table row may contain only 0/1");
  // Reject oversized rows BEFORE materializing the table: length must be
  // a power of two no larger than 2^kMaxVars.
  const std::size_t len = bits.size();
  if ((len & (len - 1)) != 0)
    return util::Status::parse_error(
        "esop: truth-table row length must be a power of two");
  if (len > (std::size_t{1} << esop::kMaxVars))
    return util::Status::invalid(
        "esop: truth-table row implies more than " +
        std::to_string(esop::kMaxVars) + " variables");
  jobs.push_back(Job{"f", tt::TruthTable::from_bits(bits), 0});
  return util::Status::okay();
}

/// PLA input: every output becomes one job. Don't-care cubes carry no
/// exact-ESOP semantics here; they are treated as OFF and counted so the
/// stats block can say so.
util::Status parse_pla_input(const std::string& text, std::vector<Job>& jobs) {
  espresso::Pla pla;
  try {
    pla = espresso::parse_pla(text);
  } catch (const std::exception& e) {
    return util::Status::parse_error(e.what());
  }
  // Arity gate BEFORE any 2^n truth-table allocation.
  if (pla.num_inputs > esop::kMaxVars)
    return util::Status::invalid(
        "esop: PLA has " + std::to_string(pla.num_inputs) +
        " inputs, above the cap of " + std::to_string(esop::kMaxVars));
  if (pla.outputs.empty())
    return util::Status::parse_error("esop: PLA has no outputs");
  for (const auto& out : pla.outputs)
    jobs.push_back(Job{out.name, out.on.to_truth_table(),
                       out.dc.size()});
  return util::Status::okay();
}

/// True when the text looks like a PLA (any line starting with '.').
bool looks_like_pla(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const auto b = line.find_first_not_of(" \t\r");
    if (b != std::string::npos && line[b] == '.') return true;
  }
  return false;
}

EsopResult run_synthesis(const EsopRequest& req) {
  EsopResult res;
  std::vector<Job> jobs;
  res.status = looks_like_pla(req.input)
                   ? parse_pla_input(req.input, jobs)
                   : parse_truth_table_input(req.input, jobs);
  if (!res.status.ok()) {
    res.exit_code = util::exit_code_for(res.status);
    return res;
  }

  util::Budget budget;
  const bool guarded = req.time_limit_ms >= 0 || req.prop_limit >= 0;
  if (req.time_limit_ms >= 0) budget.set_deadline_ms(req.time_limit_ms);
  if (req.prop_limit >= 0) budget.set_step_limit(req.prop_limit);

  esop::SynthesisOptions opt;
  opt.max_terms = req.max_terms;
  opt.conflict_limit = req.conflict_limit;
  opt.budget = guarded ? &budget : nullptr;

  const int num_inputs = jobs.front().f.num_vars();
  std::ostringstream body, stats;
  int total_rows = 0;
  bool all_minimal = true;
  for (std::size_t k = 0; k < jobs.size(); ++k) {
    const Job& job = jobs[k];
    const auto r = esop::synthesize_minimum(job.f, opt);
    if (req.show_stats) {
      stats << "# " << job.name << ": ";
      if (r.status.ok()) {
        stats << r.terms << " terms (minimal)";
      } else {
        stats << "partial, best " << (r.upper_bound >= 0 ? r.terms : 0)
              << " terms, minimum in [" << r.lower_bound << ","
              << (r.upper_bound >= 0 ? std::to_string(r.upper_bound) : "?")
              << "]";
      }
      stats << ", queries sat=" << r.stats.queries_sat
            << " unsat=" << r.stats.queries_unsat
            << " undef=" << r.stats.queries_undef
            << ", conflicts=" << r.stats.conflicts;
      if (job.ignored_dc_cubes > 0)
        stats << ", dc-cubes-ignored=" << job.ignored_dc_cubes;
      stats << "\n";
    }
    // Render this output's rows with a one-hot output plane.
    std::string plane(jobs.size(), '0');
    plane[k] = '1';
    for (const auto& c : r.cover.cubes()) {
      body << c.to_string() << " " << plane << "\n";
      ++total_rows;
    }
    res.terms += r.terms;
    all_minimal = all_minimal && r.minimal;
    if (!r.status.ok()) {
      // Stop at the first failing output: the report stays deterministic
      // and the exit code reflects the first problem encountered.
      res.status = r.status;
      res.exit_code = util::exit_code_for(res.status);
      res.stats_output = stats.str();
      res.minimal = false;
      return res;
    }
  }

  std::ostringstream out;
  out << ".i " << num_inputs << "\n.o " << jobs.size() << "\n";
  if (looks_like_pla(req.input) && jobs.size() >= 1) {
    out << ".ob";
    for (const auto& job : jobs) out << " " << job.name;
    out << "\n";
  }
  out << ".type esop\n.p " << total_rows << "\n" << body.str() << ".e\n";
  res.output = out.str();
  res.stats_output = stats.str();
  res.minimal = all_minimal;
  res.exit_code = util::kExitOk;
  return res;
}

}  // namespace

EsopResult synthesize_esop(const EsopRequest& req) {
  // A wall-clock deadline makes the stopping point non-reproducible:
  // never store or replay such results. The deterministic guards
  // (max_terms, conflict_limit, prop_limit) are config-digest inputs.
  const bool cacheable = req.cacheable() && cache::enabled();
  cache::CacheKey key;
  if (cacheable) {
    key.engine = "esop";
    key.input = cache::digest_bytes(req.input);
    cache::Hasher h;
    h.u64(kEsopFormatVersion)
        .i32(req.max_terms)
        .i64(req.conflict_limit)
        .i64(req.prop_limit)
        .boolean(req.show_stats);
    key.config = h.finish();
    if (const auto hit = cache::Cache::global().lookup(key)) {
      EsopResult res;
      if (deserialize(*hit, res)) {
        res.cached = true;
        return res;
      }
    }
  }
  EsopResult res = run_synthesis(req);
  if (cacheable) cache::Cache::global().insert(key, serialize(res));
  return res;
}

}  // namespace l2l::api
