#pragma once
// The shared request spine of every api::*Request struct. Before this
// header each facade hand-copied the same two cross-cutting knobs --
// the wall-clock limit and the cache policy -- with per-struct comments
// drifting out of sync. They live here once, with the one rule every
// facade follows:
//
//   * time_limit_ms >= 0 disables caching. Where a deadline stops an
//     engine is not reproducible, so deadline-limited results are never
//     stored or replayed. Engines without an internal wall-clock budget
//     (espresso, mls, place, route, place-grade) still honor the rule at
//     the cache layer: the limit marks the result non-reproducible even
//     if the engine itself runs to completion.
//   * use_cache = false opts a single request out of the result cache
//     without touching the process-wide kill switch (cache::enabled()).
//
// Deliberately NOT in the base: the deterministic budgets (prop_limit,
// node_limit, step_limit, conflict_limit). Their units differ per engine
// (propagations vs BDD nodes vs graded nets) and each joins its facade's
// config digest, so a shared field would blur exactly the knobs the
// digests must pin. The lint/sema gates are tool-level concerns and stay
// in tools::CommonFlags.
//
// tools/common_cli.hpp registers --time-limit-ms once and fills the base
// for every portal (see add_request_flags), ending the per-tool copies.

#include <cstdint>

namespace l2l::api {

struct RequestBase {
  /// -1 = unlimited; >= 0 enables the engine's wall-clock deadline where
  /// supported and always disables caching (see header comment).
  std::int64_t time_limit_ms = -1;
  /// Per-request cache opt-out; the process-wide switch is
  /// cache::enabled() and both must be true for a lookup to happen.
  bool use_cache = true;

  /// The one cacheability rule, spelled once: opted in AND free of a
  /// wall-clock deadline. Facades still AND this with cache::enabled()
  /// and any engine-specific reproducibility conditions (e.g. a non-null
  /// Budget pointer in RouterOptions).
  bool cacheable() const { return use_cache && time_limit_ms < 0; }
};

}  // namespace l2l::api
