#include "api/sat.hpp"

#include <sstream>

#include "api/detail.hpp"
#include "cache/cache.hpp"
#include "sat/dimacs.hpp"
#include "util/budget.hpp"

namespace l2l::api {

namespace {

constexpr std::uint64_t kSatFormatVersion = 1;

std::string serialize(const SatResult& res) {
  std::string out;
  cache::append_record(out, res.output);
  cache::append_i64(out, res.exit_code);
  detail::append_status(out, res.status);
  return out;
}

bool deserialize(std::string_view bytes, SatResult& res) {
  cache::RecordReader in(bytes);
  std::int64_t exit_code = 0;
  if (!in.next_string(res.output) || !in.next_i64(exit_code) ||
      !detail::read_status(in, res.status) || !in.complete())
    return false;
  res.exit_code = static_cast<int>(exit_code);
  return true;
}

SatResult run_solver(const SatRequest& req) {
  SatResult res;
  sat::SolverOptions opt = req.options;
  util::Budget budget;
  if (req.time_limit_ms >= 0 || req.prop_limit >= 0) {
    if (req.time_limit_ms >= 0) budget.set_deadline_ms(req.time_limit_ms);
    if (req.prop_limit >= 0) budget.set_step_limit(req.prop_limit);
    opt.budget = &budget;
  }

  sat::CnfFormula formula;
  try {
    formula = sat::parse_dimacs(req.dimacs);
  } catch (const std::exception& e) {
    res.status = util::Status::parse_error(e.what());
    res.exit_code = util::exit_code_for(res.status);
    return res;
  }
  sat::Solver solver(opt);
  sat::LBool result = sat::LBool::kFalse;
  if (sat::load_into_solver(formula, solver)) result = solver.solve();
  std::ostringstream out;
  out << sat::result_text(solver, result);
  if (req.show_stats) {
    const auto& s = solver.stats();
    out << "c decisions " << s.decisions << " propagations " << s.propagations
        << " conflicts " << s.conflicts << " restarts " << s.restarts
        << " learnts " << s.learnt_clauses << "\n";
  }
  res.output = out.str();
  if (result == sat::LBool::kTrue) {
    res.exit_code = util::kExitSat;
  } else if (result == sat::LBool::kFalse) {
    res.exit_code = util::kExitUnsat;
  } else if (!solver.stop_reason().ok()) {
    res.status = solver.stop_reason();
    res.exit_code = util::exit_code_for(res.status);
  } else {
    res.exit_code = util::kExitOk;
  }
  return res;
}

}  // namespace

SatResult solve_sat(const SatRequest& req) {
  // A wall-clock deadline (or an external budget the caller wired into
  // options) makes the stopping point non-reproducible: bypass the cache.
  const bool cacheable = req.cacheable() && cache::enabled() &&
                         req.options.budget == nullptr;
  cache::CacheKey key;
  if (cacheable) {
    key.engine = "sat";
    key.input = cache::digest_bytes(req.dimacs);
    cache::Hasher h;
    h.u64(kSatFormatVersion)
        .boolean(req.options.use_vsids)
        .boolean(req.options.use_restarts)
        .boolean(req.options.use_phase_saving)
        .f64(req.options.var_decay)
        .f64(req.options.clause_decay)
        .i32(req.options.restart_base)
        .i64(req.options.conflict_limit)
        .i64(req.prop_limit)
        .boolean(req.show_stats);
    key.config = h.finish();
    if (const auto hit = cache::Cache::global().lookup(key)) {
      SatResult res;
      if (deserialize(*hit, res)) {
        res.cached = true;
        return res;
      }
    }
  }
  SatResult res = run_solver(req);
  if (cacheable) cache::Cache::global().insert(key, serialize(res));
  return res;
}

}  // namespace l2l::api
