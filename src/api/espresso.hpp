#pragma once
// Two-level minimization facade (the espresso_lite portal). Takes the
// whole PLA text, minimizes every output (heuristic or exact), returns
// the minimized PLA plus the per-output "# name: cubes/lits -> ..."
// stats block the tool prints on stderr.
//
// Engine id "espresso". Minimization is fully deterministic, so every
// request is cacheable.

#include <string>

#include "util/status.hpp"

namespace l2l::api {

struct EspressoRequest {
  std::string pla;
  bool exact = false;        ///< Quine-McCluskey instead of the heuristic
  bool single_pass = false;  ///< ablation: one expand/reduce pass
  bool show_stats = false;   ///< fill EspressoResult::stats_output
  bool use_cache = true;
};

struct EspressoResult {
  std::string output;        ///< minimized PLA text (stdout)
  std::string stats_output;  ///< "# <name>: ..." lines (stderr), or empty
  /// 0 ok, 3 malformed PLA.
  int exit_code = 0;
  util::Status status;
  bool cached = false;
};

EspressoResult minimize_pla(const EspressoRequest& req);

}  // namespace l2l::api
