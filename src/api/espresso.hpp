#pragma once
// Two-level minimization facade (the espresso_lite portal). Takes the
// whole PLA text, minimizes every output (heuristic or exact), returns
// the minimized PLA plus the per-output "# name: cubes/lits -> ..."
// stats block the tool prints on stderr.
//
// Engine id "espresso". Minimization is fully deterministic, so every
// request is cacheable.

#include <string>

#include "api/base.hpp"
#include "util/status.hpp"

namespace l2l::api {

/// time_limit_ms / use_cache come from RequestBase (api/base.hpp). The
/// minimizer has no internal wall-clock budget; a time limit only marks
/// the request uncacheable.
struct EspressoRequest : RequestBase {
  std::string pla;
  bool exact = false;        ///< Quine-McCluskey instead of the heuristic
  bool single_pass = false;  ///< ablation: one expand/reduce pass
  bool show_stats = false;   ///< fill EspressoResult::stats_output
};

struct EspressoResult {
  std::string output;        ///< minimized PLA text (stdout)
  std::string stats_output;  ///< "# <name>: ..." lines (stderr), or empty
  /// 0 ok, 3 malformed PLA.
  int exit_code = 0;
  util::Status status;
  bool cached = false;
};

EspressoResult minimize_pla(const EspressoRequest& req);

}  // namespace l2l::api
