#pragma once
// Routing facade: route_all behind a content-addressed key (the flow's
// routing stage). The problem digest hashes the canonical write_problem
// text; the config digest covers every RouterOptions/RouteCosts knob.
//
// Engine id "route". A request carrying a Budget pointer bypasses the
// cache (deadline trip points are not reproducible); the deterministic
// iteration limits are part of the config digest.

#include "api/base.hpp"
#include "cache/digest.hpp"
#include "gen/routing_gen.hpp"
#include "route/router.hpp"

namespace l2l::api {

/// time_limit_ms / use_cache come from RequestBase (api/base.hpp). The
/// engine's own deadline rides in options.budget; either guard disables
/// caching.
struct RouteRequest : RequestBase {
  route::RouterOptions options;  ///< non-null budget disables caching
};

struct RouteResult {
  route::RouteSolution solution;
  bool cached = false;
};

RouteResult route_nets(const gen::RoutingProblem& problem,
                       const RouteRequest& req);

/// Canonical digest of a routing problem (write_problem text). Shared
/// with the routing grader facade so both key the same way.
cache::Digest128 routing_problem_digest(const gen::RoutingProblem& p);

}  // namespace l2l::api
