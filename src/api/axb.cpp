#include "api/axb.hpp"

#include <sstream>
#include <vector>

#include "api/detail.hpp"
#include "cache/cache.hpp"
#include "linalg/cg.hpp"
#include "linalg/dense.hpp"
#include "linalg/sparse.hpp"
#include "util/budget.hpp"
#include "util/strings.hpp"

namespace l2l::api {

namespace {

constexpr std::uint64_t kAxbFormatVersion = 1;

std::string serialize(const AxbResult& res) {
  std::string out;
  cache::append_record(out, res.output);
  cache::append_record(out, res.error_output);
  cache::append_i64(out, res.exit_code);
  detail::append_status(out, res.status);
  return out;
}

bool deserialize(std::string_view bytes, AxbResult& res) {
  cache::RecordReader in(bytes);
  std::int64_t exit_code = 0;
  if (!in.next_string(res.output) || !in.next_string(res.error_output) ||
      !in.next_i64(exit_code) || !detail::read_status(in, res.status) ||
      !in.complete())
    return false;
  res.exit_code = static_cast<int>(exit_code);
  return true;
}

AxbResult fail_with(util::Status status) {
  AxbResult res;
  res.error_output = "error: " + status.to_string() + "\n";
  res.exit_code = util::exit_code_for(status);
  res.status = std::move(status);
  return res;
}

AxbResult run_solver(const AxbRequest& req) {
  std::istringstream in(req.input);
  // The dimension sizes an n*n dense allocation, so it is validated
  // before any memory is touched: a submission declaring n = 10^9 gets a
  // diagnostic, not an OOM abort.
  constexpr int kMaxDim = 4096;
  int n = 0;
  if (!(in >> n))
    return fail_with(util::Status::parse_error("bad or missing dimension"));
  if (n <= 0 || n > kMaxDim)
    return fail_with(util::Status::invalid(
        util::format("dimension %d out of range [1, %d]", n, kMaxDim)));
  linalg::DenseMatrix a(n, n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      if (!(in >> a.at(i, j)))
        return fail_with(util::Status::parse_error(util::format(
            "matrix entry (%d, %d) missing or not a number", i, j)));
  std::vector<double> b(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < b.size(); ++i)
    if (!(in >> b[i]))
      return fail_with(util::Status::parse_error(util::format(
          "rhs entry %d missing or not a number", static_cast<int>(i))));

  AxbResult res;
  if (req.use_cg) {
    linalg::SparseMatrix s(n);
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j)
        if (a.at(i, j) != 0.0) s.add(i, j, a.at(i, j));
    s.compress();
    if (!s.is_symmetric(1e-9))
      return fail_with(
          util::Status::invalid("--cg requires a symmetric matrix"));
    util::Budget budget;
    linalg::CgOptions cgopt;
    if (req.time_limit_ms >= 0) {
      budget.set_deadline_ms(req.time_limit_ms);
      cgopt.budget = &budget;
    }
    const auto cg = linalg::conjugate_gradient(s, b, cgopt);
    if (!cg.converged) {
      if (req.time_limit_ms >= 0 && budget.exhausted())
        return fail_with(budget.status());
      std::ostringstream err;
      err << "error: CG did not converge (residual " << cg.residual << ")\n";
      res.error_output = err.str();
      res.exit_code = util::kExitFail;
      res.status = util::Status{util::StatusCode::kInvalidInput,
                                "CG did not converge"};
      return res;
    }
    std::ostringstream out;
    out << "x =";
    for (const double v : cg.x) out << " " << v;
    out << "\n# cg iterations " << cg.iterations << "\n";
    res.output = out.str();
    res.exit_code = util::kExitOk;
    return res;
  }

  const auto x = linalg::solve_gauss(a, b);
  if (!x) {
    res.error_output = "error: singular matrix\n";
    res.exit_code = util::kExitFail;
    res.status =
        util::Status{util::StatusCode::kInvalidInput, "singular matrix"};
    return res;
  }
  std::ostringstream out;
  out << "x =";
  for (const double v : *x) out << " " << v;
  out << "\n";
  res.output = out.str();
  res.exit_code = util::kExitOk;
  return res;
}

}  // namespace

AxbResult solve_axb(const AxbRequest& req) {
  const bool cacheable = req.cacheable() && cache::enabled();
  cache::CacheKey key;
  if (cacheable) {
    key.engine = "axb";
    key.input = cache::digest_bytes(req.input);
    cache::Hasher h;
    h.u64(kAxbFormatVersion).boolean(req.use_cg);
    key.config = h.finish();
    if (const auto hit = cache::Cache::global().lookup(key)) {
      AxbResult res;
      if (deserialize(*hit, res)) {
        res.cached = true;
        return res;
      }
    }
  }
  AxbResult res = run_solver(req);
  if (cacheable) cache::Cache::global().insert(key, serialize(res));
  return res;
}

}  // namespace l2l::api
