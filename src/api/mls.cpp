#include "api/mls.hpp"

#include "api/detail.hpp"
#include "cache/cache.hpp"
#include "network/blif.hpp"

namespace l2l::api {

namespace {

constexpr std::uint64_t kMlsFormatVersion = 1;

cache::Digest128 config_digest(const mls::ScriptOptions& opt) {
  cache::Hasher h;
  h.u64(kMlsFormatVersion)
      .i32(opt.eliminate_threshold)
      .boolean(opt.use_sdc_simplify)
      .i32(opt.passes);
  return h.finish();
}

void append_stats(std::string& out, const mls::ScriptStats& s) {
  cache::append_i64(out, s.literals_before);
  cache::append_i64(out, s.literals_after);
  cache::append_i64(out, s.nodes_before);
  cache::append_i64(out, s.nodes_after);
  cache::append_i64(out, s.swept);
  cache::append_i64(out, s.eliminated);
  cache::append_i64(out, s.kernels_extracted);
  cache::append_i64(out, s.cubes_extracted);
  cache::append_i64(out, s.resubstitutions);
}

bool read_stats(cache::RecordReader& in, mls::ScriptStats& s) {
  std::int64_t v[9];
  for (auto& f : v)
    if (!in.next_i64(f)) return false;
  s.literals_before = static_cast<int>(v[0]);
  s.literals_after = static_cast<int>(v[1]);
  s.nodes_before = static_cast<int>(v[2]);
  s.nodes_after = static_cast<int>(v[3]);
  s.swept = static_cast<int>(v[4]);
  s.eliminated = static_cast<int>(v[5]);
  s.kernels_extracted = static_cast<int>(v[6]);
  s.cubes_extracted = static_cast<int>(v[7]);
  s.resubstitutions = static_cast<int>(v[8]);
  return true;
}

std::string serialize(const std::string& blif, const mls::ScriptStats& s) {
  std::string out;
  cache::append_record(out, blif);
  append_stats(out, s);
  return out;
}

bool deserialize(std::string_view bytes, std::string& blif,
                 mls::ScriptStats& s) {
  cache::RecordReader in(bytes);
  return in.next_string(blif) && read_stats(in, s) && in.complete();
}

}  // namespace

MlsResult optimize_blif(const MlsRequest& req) {
  MlsResult res;
  const bool cacheable = req.cacheable() && cache::enabled();
  cache::CacheKey key;
  if (cacheable) {
    key.engine = "mls";
    key.input = cache::digest_bytes(req.blif);
    key.config = config_digest(req.options);
    if (const auto hit = cache::Cache::global().lookup(key)) {
      if (deserialize(*hit, res.blif, res.stats)) {
        res.cached = true;
        return res;
      }
    }
  }
  network::Network net;
  try {
    net = network::parse_blif(req.blif);
  } catch (const std::exception& e) {
    res.status = util::Status::parse_error(e.what());
    return res;
  }
  res.stats = mls::optimize(net, req.options);
  res.blif = network::write_blif(net);
  if (cacheable) cache::Cache::global().insert(key, serialize(res.blif, res.stats));
  return res;
}

MlsNetworkResult optimize_network(network::Network& net,
                                  const mls::ScriptOptions& opt,
                                  bool use_cache) {
  MlsNetworkResult res;
  const bool cacheable = use_cache && cache::enabled();
  cache::CacheKey key;
  if (cacheable) {
    key.engine = "mls";
    key.input = cache::digest_bytes(network::write_blif(net));
    key.config = config_digest(opt);
    if (const auto hit = cache::Cache::global().lookup(key)) {
      std::string blif;
      if (deserialize(*hit, blif, res.stats)) {
        net = network::parse_blif(blif);
        res.cached = true;
        return res;
      }
    }
  }
  // Miss: optimize in place -- bit-for-bit the uncached code path.
  res.stats = mls::optimize(net, opt);
  if (cacheable)
    cache::Cache::global().insert(key,
                                  serialize(network::write_blif(net), res.stats));
  return res;
}

}  // namespace l2l::api
