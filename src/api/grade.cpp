#include "api/grade.hpp"

#include "api/detail.hpp"
#include "api/place.hpp"
#include "api/route.hpp"
#include "cache/cache.hpp"
#include "util/budget.hpp"

namespace l2l::api {

namespace {

// v2: Grade records carry the score-neutral sema diagnostics block
// after the lint block; bumping the version invalidates v1 cache
// entries instead of misreading them.
constexpr std::uint64_t kGradeFormatVersion = 2;

void append_route_grade(std::string& out, const grader::RouteGrade& g) {
  cache::append_i64(out, static_cast<std::int64_t>(g.nets.size()));
  for (const auto& net : g.nets) {
    cache::append_i64(out, net.net_id);
    cache::append_i64(out, net.legal ? 1 : 0);
    cache::append_record(out, net.reason);
    cache::append_i64(out, net.wirelength);
    cache::append_i64(out, net.vias);
  }
  cache::append_i64(out, g.legal_nets);
  cache::append_i64(out, g.total_nets);
  cache::append_i64(out, g.total_wirelength);
  cache::append_i64(out, g.total_vias);
  cache::append_f64(out, g.score);
  cache::append_record(out, g.report);
  detail::append_diagnostics(out, g.diagnostics);
  detail::append_diagnostics(out, g.lint);
  detail::append_diagnostics(out, g.sema);
  detail::append_status(out, g.status);
}

bool read_route_grade(cache::RecordReader& in, grader::RouteGrade& g) {
  std::int64_t num_nets = 0;
  if (!in.next_i64(num_nets) || num_nets < 0) return false;
  g.nets.clear();
  for (std::int64_t k = 0; k < num_nets; ++k) {
    grader::NetGrade net;
    std::int64_t id = 0, legal = 0, wirelength = 0, vias = 0;
    if (!in.next_i64(id) || !in.next_i64(legal) ||
        !in.next_string(net.reason) || !in.next_i64(wirelength) ||
        !in.next_i64(vias))
      return false;
    net.net_id = static_cast<int>(id);
    net.legal = legal != 0;
    net.wirelength = static_cast<int>(wirelength);
    net.vias = static_cast<int>(vias);
    g.nets.push_back(std::move(net));
  }
  std::int64_t legal_nets = 0, total_nets = 0, wirelength = 0, vias = 0;
  if (!in.next_i64(legal_nets) || !in.next_i64(total_nets) ||
      !in.next_i64(wirelength) || !in.next_i64(vias) ||
      !in.next_f64(g.score) || !in.next_string(g.report) ||
      !detail::read_diagnostics(in, g.diagnostics) ||
      !detail::read_diagnostics(in, g.lint) ||
      !detail::read_diagnostics(in, g.sema) ||
      !detail::read_status(in, g.status))
    return false;
  g.legal_nets = static_cast<int>(legal_nets);
  g.total_nets = static_cast<int>(total_nets);
  g.total_wirelength = static_cast<int>(wirelength);
  g.total_vias = static_cast<int>(vias);
  return true;
}

void append_place_grade(std::string& out, const grader::PlaceGrade& g) {
  cache::append_i64(out, g.legal ? 1 : 0);
  cache::append_record(out, g.reason);
  cache::append_f64(out, g.hpwl);
  cache::append_f64(out, g.quality_ratio);
  cache::append_f64(out, g.score);
  cache::append_record(out, g.report);
  detail::append_diagnostics(out, g.diagnostics);
  detail::append_diagnostics(out, g.lint);
  detail::append_diagnostics(out, g.sema);
  detail::append_status(out, g.status);
}

bool read_place_grade(cache::RecordReader& in, grader::PlaceGrade& g) {
  std::int64_t legal = 0;
  if (!in.next_i64(legal) || !in.next_string(g.reason) ||
      !in.next_f64(g.hpwl) || !in.next_f64(g.quality_ratio) ||
      !in.next_f64(g.score) || !in.next_string(g.report) ||
      !detail::read_diagnostics(in, g.diagnostics) ||
      !detail::read_diagnostics(in, g.lint) ||
      !detail::read_diagnostics(in, g.sema) ||
      !detail::read_status(in, g.status))
    return false;
  g.legal = legal != 0;
  return true;
}

}  // namespace

RouteGradeResult grade_route_submission(const gen::RoutingProblem& problem,
                                        const RouteGradeRequest& req) {
  return grade_route_submission(problem, routing_problem_digest(problem), req);
}

RouteGradeResult grade_route_submission(const gen::RoutingProblem& problem,
                                        const cache::Digest128& problem_digest,
                                        const RouteGradeRequest& req) {
  const bool cacheable = req.cacheable() && cache::enabled();
  cache::CacheKey key;
  if (cacheable) {
    key.engine = "grader.route";
    key.input = cache::digest_bytes(req.submission);
    cache::Hasher h;
    h.u64(kGradeFormatVersion)
        .u64(problem_digest.hi)
        .u64(problem_digest.lo)
        .i64(req.step_limit);
    key.config = h.finish();
    if (const auto hit = cache::Cache::global().lookup(key)) {
      RouteGradeResult res;
      cache::RecordReader in(*hit);
      if (read_route_grade(in, res.grade) && in.complete()) {
        res.cached = true;
        return res;
      }
    }
  }
  RouteGradeResult res;
  util::Budget budget;
  const util::Budget* guard = nullptr;
  if (req.step_limit >= 0 || req.time_limit_ms >= 0) {
    if (req.step_limit >= 0) budget.set_step_limit(req.step_limit);
    if (req.time_limit_ms >= 0) budget.set_deadline_ms(req.time_limit_ms);
    guard = &budget;
  }
  res.grade = grader::grade_routing_text(problem, req.submission, guard);
  if (cacheable) {
    std::string bytes;
    append_route_grade(bytes, res.grade);
    cache::Cache::global().insert(key, bytes);
  }
  return res;
}

PlaceGradeResult grade_place_submission(const gen::PlacementProblem& problem,
                                        const place::Grid& grid,
                                        const PlaceGradeRequest& req) {
  return grade_place_submission(problem, grid,
                                placement_problem_digest(problem), req);
}

PlaceGradeResult grade_place_submission(const gen::PlacementProblem& problem,
                                        const place::Grid& grid,
                                        const cache::Digest128& problem_digest,
                                        const PlaceGradeRequest& req) {
  const bool cacheable = req.cacheable() && cache::enabled();
  cache::CacheKey key;
  if (cacheable) {
    key.engine = "grader.place";
    key.input = cache::digest_bytes(req.submission);
    cache::Hasher h;
    h.u64(kGradeFormatVersion)
        .u64(problem_digest.hi)
        .u64(problem_digest.lo)
        .i32(grid.rows)
        .i32(grid.sites_per_row)
        .f64(grid.width)
        .f64(grid.height)
        .f64(req.reference_hpwl);
    key.config = h.finish();
    if (const auto hit = cache::Cache::global().lookup(key)) {
      PlaceGradeResult res;
      cache::RecordReader in(*hit);
      if (read_place_grade(in, res.grade) && in.complete()) {
        res.cached = true;
        return res;
      }
    }
  }
  PlaceGradeResult res;
  res.grade =
      grader::grade_placement_text(problem, grid, req.submission,
                                   req.reference_hpwl);
  if (cacheable) {
    std::string bytes;
    append_place_grade(bytes, res.grade);
    cache::Cache::global().insert(key, bytes);
  }
  return res;
}

}  // namespace l2l::api
