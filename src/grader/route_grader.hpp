#pragma once
// The maze-router auto-grader (Figures 4 and 6): consumes an ASCII
// solution, checks every net for legality, and produces a score with
// partial credit per net -- "exactly like building a large regression
// suite for a commercial EDA tool" (paper, §2.2).

#include <string>
#include <vector>

#include "grader/batch.hpp"
#include "route/solution.hpp"
#include "util/budget.hpp"
#include "util/status.hpp"

namespace l2l::grader {

struct NetGrade {
  int net_id = -1;
  bool legal = false;
  std::string reason;      ///< empty when legal
  int wirelength = 0;      ///< cells used
  int vias = 0;
};

struct RouteGrade {
  std::vector<NetGrade> nets;
  int legal_nets = 0;
  int total_nets = 0;
  int total_wirelength = 0;
  int total_vias = 0;
  /// Partial credit: 100 * legal / total.
  double score = 0.0;
  /// Human-readable report (the "webpage" of the portal architecture).
  std::string report;
  /// Line/column-anchored parse findings for the student. A submission
  /// can carry diagnostics AND partial credit: independently well-formed
  /// nets are salvaged and graded even when other blocks are garbage.
  std::vector<util::Diagnostic> diagnostics;
  /// Pre-grade lint findings (L2L-Sxxx rule pack, run with the problem so
  /// the geometric rules fire). Lint never changes the score.
  std::vector<util::Diagnostic> lint;
  /// Pre-grade semantic findings (l2l::sema, format-sniffed on the raw
  /// upload): fires when a student submits a netlist/CNF/PLA artifact
  /// with semantic defects to the wrong portal. Never changes the score;
  /// a routing submission has none.
  std::vector<util::Diagnostic> sema;
  /// Non-ok when grading itself was cut short (budget) or failed
  /// (internal error); parse problems are diagnostics, not status.
  util::Status status;
};

/// Grade a parsed solution against the problem. Never throws. The
/// optional resource guard consumes one step per net graded; exhaustion
/// stops grading with the nets checked so far scored and status set.
RouteGrade grade_routing(const gen::RoutingProblem& problem,
                         const route::RouteSolution& solution,
                         const util::Budget* budget = nullptr);

/// Text-in/text-out variant: parse (leniently), grade, report. Never
/// throws. Malformed blocks become diagnostics; salvageable nets still
/// earn partial credit. A fully unparsable submission scores 0 with a
/// "parse error" report.
RouteGrade grade_routing_text(const gen::RoutingProblem& problem,
                              const std::string& solution_text,
                              const util::Budget* budget = nullptr);

/// Score many independent submissions against the same problem, spread
/// across the worker pool (the MOOC's planet-scale grading queue). The
/// result vector is in submission order and identical at any L2L_THREADS.
/// Each submission is isolated: its own resource guard and exception
/// barrier, plus a bounded retry loop (see BatchOptions).
std::vector<RouteGrade> grade_routing_batch(
    const gen::RoutingProblem& problem,
    const std::vector<std::string>& submissions, const BatchOptions& opt = {});

}  // namespace l2l::grader
