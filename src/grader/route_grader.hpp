#pragma once
// The maze-router auto-grader (Figures 4 and 6): consumes an ASCII
// solution, checks every net for legality, and produces a score with
// partial credit per net -- "exactly like building a large regression
// suite for a commercial EDA tool" (paper, §2.2).

#include <string>
#include <vector>

#include "route/solution.hpp"

namespace l2l::grader {

struct NetGrade {
  int net_id = -1;
  bool legal = false;
  std::string reason;      ///< empty when legal
  int wirelength = 0;      ///< cells used
  int vias = 0;
};

struct RouteGrade {
  std::vector<NetGrade> nets;
  int legal_nets = 0;
  int total_nets = 0;
  int total_wirelength = 0;
  int total_vias = 0;
  /// Partial credit: 100 * legal / total.
  double score = 0.0;
  /// Human-readable report (the "webpage" of the portal architecture).
  std::string report;
};

/// Grade a parsed solution against the problem.
RouteGrade grade_routing(const gen::RoutingProblem& problem,
                         const route::RouteSolution& solution);

/// Text-in/text-out variant: parse, grade, report. Parse errors grade 0.
RouteGrade grade_routing_text(const gen::RoutingProblem& problem,
                              const std::string& solution_text);

/// Score many independent submissions against the same problem, spread
/// across the worker pool (the MOOC's planet-scale grading queue). The
/// result vector is in submission order and identical at any L2L_THREADS.
std::vector<RouteGrade> grade_routing_batch(
    const gen::RoutingProblem& problem,
    const std::vector<std::string>& submissions);

}  // namespace l2l::grader
