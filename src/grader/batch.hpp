#pragma once
// Shared controls for the batch grading entry points. The batch graders
// are the unattended half of the MOOC service: one hostile submission must
// never take down (or stall) the whole queue, so each submission runs
// isolated -- its own resource guard, its own exception barrier, and a
// bounded retry loop for transient failures.

#include <cstdint>

namespace l2l::grader {

struct BatchOptions {
  /// Per-submission wall-clock limit in ms (< 0 = none). Wall-clock trips
  /// are nondeterministic; step_limit is the reproducible guard.
  std::int64_t time_limit_ms = -1;
  /// Per-submission step budget (< 0 = none); graders consume one step
  /// per net/cell checked, so the stop point is deterministic.
  std::int64_t step_limit = -1;
  /// Total attempts per submission (>= 1). Retries only fire when grading
  /// threw -- a transient failure -- never on a deterministic outcome like
  /// a parse error or an exhausted step budget.
  int max_attempts = 1;
  /// Delay before the first retry, doubling per subsequent attempt.
  int backoff_base_ms = 1;
};

}  // namespace l2l::grader
