#pragma once
// The quadratic-placement auto-grader: consumes "cell <id> <x> <y>" text,
// checks legality on the site grid, and scores by HPWL against a
// reference-quality threshold (the project's grading scheme: legality
// gates the score, wirelength earns the quality points).

#include <string>
#include <vector>

#include "grader/batch.hpp"
#include "place/legalize.hpp"
#include "util/status.hpp"

namespace l2l::grader {

struct PlaceGrade {
  bool legal = false;
  std::string reason;     ///< empty when legal
  double hpwl = 0.0;
  /// Quality ratio vs. the reference placement's HPWL (< 1 beats it).
  double quality_ratio = 0.0;
  /// 0 when illegal; otherwise 50 legality points + up to 50 quality
  /// points scaled by reference_hpwl / hpwl (capped at 1).
  double score = 0.0;
  std::string report;
  /// Every malformed line found in one pass (a student fixing a bulk
  /// export learns all their mistakes from a single upload, not one per
  /// resubmission).
  std::vector<util::Diagnostic> diagnostics;
  /// Pre-grade lint findings (L2L-Lxxx rule pack), prepended to the
  /// report. Lint never changes the score; a clean submission has none.
  std::vector<util::Diagnostic> lint;
  /// Pre-grade semantic findings (l2l::sema, format-sniffed on the raw
  /// upload): fires when a student submits a netlist/CNF/PLA artifact
  /// with semantic defects to the wrong portal. Never changes the score;
  /// a placement submission has none.
  std::vector<util::Diagnostic> sema;
  /// Non-ok when grading itself failed (internal error in the batch path).
  util::Status status;
};

/// Placement solution text: one "cell <index> <col> <row>" line per cell.
std::string write_placement_text(const place::GridPlacement& gp);

/// Result of the collecting parse below. The placement holds every cell
/// that parsed cleanly; cells on malformed or out-of-range lines stay at
/// the -1 sentinel.
struct ParsedPlacement {
  place::GridPlacement placement;
  std::vector<util::Diagnostic> diagnostics;  ///< empty = clean parse

  bool clean() const { return diagnostics.empty(); }
};

/// Tolerant parse reporting ALL malformed lines in one pass (line- and
/// column-anchored). Never throws.
ParsedPlacement parse_placement_diagnostics(const std::string& text,
                                            int num_cells);

/// Strict parse: throws std::invalid_argument carrying the first
/// diagnostic when anything is malformed or missing.
place::GridPlacement parse_placement_text(const std::string& text,
                                          int num_cells);

/// Grade a site assignment.
PlaceGrade grade_placement(const gen::PlacementProblem& problem,
                           const place::Grid& grid,
                           const place::GridPlacement& gp,
                           double reference_hpwl);

/// Text-in/text-out variant; never throws. Parse errors score 0 with
/// every malformed line reported (see ParsedPlacement).
PlaceGrade grade_placement_text(const gen::PlacementProblem& problem,
                                const place::Grid& grid,
                                const std::string& text,
                                double reference_hpwl);

/// Score many independent submissions against the same problem, spread
/// across the worker pool. Result order matches submission order and is
/// identical at any L2L_THREADS. Each submission is isolated: exception
/// barrier plus a bounded retry loop (see BatchOptions).
std::vector<PlaceGrade> grade_placement_batch(
    const gen::PlacementProblem& problem, const place::Grid& grid,
    const std::vector<std::string>& submissions, double reference_hpwl,
    const BatchOptions& opt = {});

}  // namespace l2l::grader
