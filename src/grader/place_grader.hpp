#pragma once
// The quadratic-placement auto-grader: consumes "cell <id> <x> <y>" text,
// checks legality on the site grid, and scores by HPWL against a
// reference-quality threshold (the project's grading scheme: legality
// gates the score, wirelength earns the quality points).

#include <string>
#include <vector>

#include "place/legalize.hpp"

namespace l2l::grader {

struct PlaceGrade {
  bool legal = false;
  std::string reason;     ///< empty when legal
  double hpwl = 0.0;
  /// Quality ratio vs. the reference placement's HPWL (< 1 beats it).
  double quality_ratio = 0.0;
  /// 0 when illegal; otherwise 50 legality points + up to 50 quality
  /// points scaled by reference_hpwl / hpwl (capped at 1).
  double score = 0.0;
  std::string report;
};

/// Placement solution text: one "cell <index> <col> <row>" line per cell.
std::string write_placement_text(const place::GridPlacement& gp);
place::GridPlacement parse_placement_text(const std::string& text,
                                          int num_cells);

/// Grade a site assignment.
PlaceGrade grade_placement(const gen::PlacementProblem& problem,
                           const place::Grid& grid,
                           const place::GridPlacement& gp,
                           double reference_hpwl);

/// Text-in/text-out variant; parse errors score 0.
PlaceGrade grade_placement_text(const gen::PlacementProblem& problem,
                                const place::Grid& grid,
                                const std::string& text,
                                double reference_hpwl);

/// Score many independent submissions against the same problem, spread
/// across the worker pool. Result order matches submission order and is
/// identical at any L2L_THREADS.
std::vector<PlaceGrade> grade_placement_batch(
    const gen::PlacementProblem& problem, const place::Grid& grid,
    const std::vector<std::string>& submissions, double reference_hpwl);

}  // namespace l2l::grader
