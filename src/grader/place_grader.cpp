#include "grader/place_grader.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <sstream>
#include <string_view>
#include <thread>

#include "cache/cache.hpp"
#include "lint/lint.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sema/sema.hpp"
#include "place/wirelength.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"

namespace l2l::grader {

std::string write_placement_text(const place::GridPlacement& gp) {
  std::string out;
  for (std::size_t c = 0; c < gp.col.size(); ++c)
    out += util::format("cell %d %d %d\n", static_cast<int>(c), gp.col[c],
                        gp.row[c]);
  return out;
}

ParsedPlacement parse_placement_diagnostics(const std::string& text,
                                            int num_cells) {
  ParsedPlacement out;
  auto& gp = out.placement;
  gp.col.assign(static_cast<std::size_t>(num_cells), -1);
  gp.row.assign(static_cast<std::size_t>(num_cells), -1);
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  auto diag = [&](std::string msg) {
    const auto pos = line.find_first_not_of(" \t\r\n");
    const int col = pos == std::string::npos ? 1 : static_cast<int>(pos) + 1;
    out.diagnostics.push_back(util::make_error(lineno, col, std::move(msg)));
  };
  auto excerpt = [](std::string_view t) {
    constexpr std::size_t kMax = 60;
    return std::string(t.size() <= kMax ? t : t.substr(0, kMax));
  };
  while (std::getline(in, line)) {
    ++lineno;
    const auto t = util::trim(line);
    if (t.empty() || t[0] == '#') continue;
    const auto tok = util::split(t);
    if (tok.size() != 4 || tok[0] != "cell") {
      diag("placement: bad line '" + excerpt(t) + "'");
      continue;
    }
    const auto c = util::parse_int(tok[1]);
    const auto col = util::parse_int(tok[2]);
    const auto row = util::parse_int(tok[3]);
    if (!c || !col || !row) {
      diag("placement: bad number in '" + excerpt(t) + "'");
      continue;
    }
    if (*c < 0 || *c >= num_cells) {
      diag(util::format("placement: cell index %d out of range [0, %d)", *c,
                        num_cells));
      continue;
    }
    if (gp.col[static_cast<std::size_t>(*c)] >= 0)
      diag(util::format("placement: cell %d assigned twice", *c));
    gp.col[static_cast<std::size_t>(*c)] = *col;
    gp.row[static_cast<std::size_t>(*c)] = *row;
  }
  int missing = 0;
  int first_missing = -1;
  for (int c = 0; c < num_cells; ++c)
    if (gp.col[static_cast<std::size_t>(c)] < 0) {
      ++missing;
      if (first_missing < 0) first_missing = c;
    }
  if (missing > 0)
    out.diagnostics.push_back(util::make_error(
        0, 0,
        util::format("placement: cell %d missing (%d cells unassigned)",
                     first_missing, missing)));
  return out;
}

place::GridPlacement parse_placement_text(const std::string& text,
                                          int num_cells) {
  auto parsed = parse_placement_diagnostics(text, num_cells);
  if (!parsed.clean())
    throw std::invalid_argument(parsed.diagnostics.front().to_string());
  return std::move(parsed.placement);
}

PlaceGrade grade_placement(const gen::PlacementProblem& problem,
                           const place::Grid& grid,
                           const place::GridPlacement& gp,
                           double reference_hpwl) {
  obs::ScopedSpan span("grader.place.grade", "grader");
  PlaceGrade g;
  if (static_cast<int>(gp.col.size()) != problem.num_cells) {
    g.reason = "wrong cell count";
  } else if (!place::is_legal(gp, grid)) {
    g.reason = "illegal placement (site collision or out of range)";
  }
  if (!g.reason.empty()) {
    g.report = util::format("PLACEMENT GRADE: FAIL (%s), score 0\n",
                            g.reason.c_str());
    return g;
  }
  g.legal = true;
  g.hpwl = place::hpwl(problem, gp.to_continuous(grid));
  g.quality_ratio = reference_hpwl > 0 ? g.hpwl / reference_hpwl : 1.0;
  const double quality_points =
      50.0 * std::min(1.0, reference_hpwl / std::max(1e-9, g.hpwl));
  g.score = 50.0 + quality_points;
  g.report = util::format(
      "PLACEMENT GRADE: legal, HPWL %.1f (reference %.1f, ratio %.3f), "
      "score %.1f\n",
      g.hpwl, reference_hpwl, g.quality_ratio, g.score);
  return g;
}

PlaceGrade grade_placement_text(const gen::PlacementProblem& problem,
                                const place::Grid& grid,
                                const std::string& text,
                                double reference_hpwl) {
  // Pre-grade lint: the L2L-Lxxx pack with the full assignment context.
  // Findings ride along in the report (rule IDs included) but never touch
  // the score -- grading below stays byte-for-byte what it always was for
  // clean submissions, which have zero findings.
  const auto lint_findings = lint::lint_placement(
      text, {problem.num_cells, grid.sites_per_row, grid.rows});

  PlaceGrade g;
  auto parsed = parse_placement_diagnostics(text, problem.num_cells);
  if (!parsed.clean()) {
    // Placement has no per-net partial credit (a single missing cell makes
    // the whole assignment illegal), so parse problems gate the score --
    // but the student still gets every malformed line in one report.
    g.diagnostics = std::move(parsed.diagnostics);
    g.reason = g.diagnostics.front().to_string();
    g.report = util::format("PLACEMENT GRADE: parse error (%d problem(s)), "
                            "score 0\n",
                            static_cast<int>(g.diagnostics.size()));
    g.report += util::render_diagnostics(g.diagnostics);
  } else {
    g = grade_placement(problem, grid, parsed.placement, reference_hpwl);
  }
  if (!lint_findings.empty()) {
    g.lint = lint::to_diagnostics(lint_findings);
    std::string head =
        util::format("lint: %d finding(s) before grading\n",
                     static_cast<int>(lint_findings.size()));
    head += util::render_diagnostics(g.lint);
    g.report = head + g.report;
  }
  // Score-neutral semantic findings: sema sniffs the raw upload, so a
  // netlist/CNF/PLA with semantic defects submitted to this portal is
  // explained instead of silently mis-parsed. Placement text has no
  // sema pass -- clean submissions render byte-identically to before.
  const auto sema_report = sema::analyze_text("<submission>", text);
  if (!sema_report.findings.empty()) {
    g.sema = lint::to_diagnostics(sema_report.findings);
    std::string head =
        util::format("sema: %d semantic finding(s) before grading\n",
                     static_cast<int>(g.sema.size()));
    head += util::render_diagnostics(g.sema);
    g.report = head + g.report;
  }
  return g;
}

std::vector<PlaceGrade> grade_placement_batch(
    const gen::PlacementProblem& problem, const place::Grid& grid,
    const std::vector<std::string>& submissions, double reference_hpwl,
    const BatchOptions& opt) {
  obs::ScopedSpan span("grader.place.batch", "grader");
  obs::count("grader.place.batch_calls");
  obs::count("grader.place.submissions",
             static_cast<std::int64_t>(submissions.size()));
  std::vector<PlaceGrade> grades(submissions.size());
  // Intra-batch dedup, same scheme as grade_routing_batch: sequential
  // exact-text pre-pass, grade each unique submission once, copy the
  // rest. L2L_CACHE=0 (or a wall-clock limit) grades everything.
  std::vector<std::size_t> canonical(submissions.size());
  const bool dedup = cache::enabled() && opt.time_limit_ms < 0;
  {
    std::map<std::string_view, std::size_t> first;
    for (std::size_t i = 0; i < submissions.size(); ++i)
      canonical[i] =
          dedup ? first.emplace(submissions[i], i).first->second : i;
  }
  std::vector<std::size_t> work;
  for (std::size_t i = 0; i < submissions.size(); ++i)
    if (canonical[i] == i) work.push_back(i);
  util::parallel_for(
      0, static_cast<std::int64_t>(work.size()), 1,
      [&](std::int64_t s) {
        const auto i = work[static_cast<std::size_t>(s)];
        obs::ScopedSpan sub_span("grader.place.submission", "grader");
        const int attempts = std::max(1, opt.max_attempts);
        for (int attempt = 0; attempt < attempts; ++attempt) {
          if (attempt > 0) obs::count("grader.place.retries");
          if (attempt > 0 && opt.backoff_base_ms > 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(
                static_cast<std::int64_t>(opt.backoff_base_ms)
                << (attempt - 1)));
          try {
            grades[i] = grade_placement_text(problem, grid, submissions[i],
                                             reference_hpwl);
            break;  // deterministic outcome: retrying cannot change it
          } catch (const std::exception& e) {
            grades[i] = PlaceGrade{};
            grades[i].status = util::Status::internal(e.what());
            grades[i].report = util::format(
                "PLACEMENT GRADE: internal error (%s), score 0\n", e.what());
          } catch (...) {
            grades[i] = PlaceGrade{};
            grades[i].status = util::Status::internal("unknown error");
            grades[i].report =
                "PLACEMENT GRADE: internal error (unknown), score 0\n";
          }
        }
      });
  // Sequential epilogue: replay duplicates, then outcome tallies in
  // submission order.
  std::int64_t deduped = 0;
  for (std::size_t i = 0; i < submissions.size(); ++i)
    if (canonical[i] != i) {
      grades[i] = grades[canonical[i]];
      ++deduped;
    }
  if (obs::enabled()) {
    if (dedup) obs::count("grader.place.deduped", deduped);
    std::int64_t failed = 0;
    for (const auto& g : grades) failed += g.status.ok() ? 0 : 1;
    obs::count("grader.place.failed", failed);
    obs::count("grader.place.graded",
               static_cast<std::int64_t>(grades.size()) - failed);
  }
  return grades;
}

}  // namespace l2l::grader
