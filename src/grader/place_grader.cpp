#include "grader/place_grader.hpp"

#include <algorithm>
#include <sstream>

#include "place/wirelength.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"

namespace l2l::grader {

std::string write_placement_text(const place::GridPlacement& gp) {
  std::string out;
  for (std::size_t c = 0; c < gp.col.size(); ++c)
    out += util::format("cell %d %d %d\n", static_cast<int>(c), gp.col[c],
                        gp.row[c]);
  return out;
}

place::GridPlacement parse_placement_text(const std::string& text,
                                          int num_cells) {
  place::GridPlacement gp;
  gp.col.assign(static_cast<std::size_t>(num_cells), -1);
  gp.row.assign(static_cast<std::size_t>(num_cells), -1);
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    const auto t = util::trim(line);
    if (t.empty() || t[0] == '#') continue;
    const auto tok = util::split(t);
    if (tok.size() != 4 || tok[0] != "cell")
      throw std::invalid_argument("placement: bad line '" + std::string(t) + "'");
    const int c = std::stoi(tok[1]);
    if (c < 0 || c >= num_cells)
      throw std::invalid_argument("placement: cell index out of range");
    gp.col[static_cast<std::size_t>(c)] = std::stoi(tok[2]);
    gp.row[static_cast<std::size_t>(c)] = std::stoi(tok[3]);
  }
  for (int c = 0; c < num_cells; ++c)
    if (gp.col[static_cast<std::size_t>(c)] < 0)
      throw std::invalid_argument(
          util::format("placement: cell %d missing", c));
  return gp;
}

PlaceGrade grade_placement(const gen::PlacementProblem& problem,
                           const place::Grid& grid,
                           const place::GridPlacement& gp,
                           double reference_hpwl) {
  PlaceGrade g;
  if (static_cast<int>(gp.col.size()) != problem.num_cells) {
    g.reason = "wrong cell count";
  } else if (!place::is_legal(gp, grid)) {
    g.reason = "illegal placement (site collision or out of range)";
  }
  if (!g.reason.empty()) {
    g.report = util::format("PLACEMENT GRADE: FAIL (%s), score 0\n",
                            g.reason.c_str());
    return g;
  }
  g.legal = true;
  g.hpwl = place::hpwl(problem, gp.to_continuous(grid));
  g.quality_ratio = reference_hpwl > 0 ? g.hpwl / reference_hpwl : 1.0;
  const double quality_points =
      50.0 * std::min(1.0, reference_hpwl / std::max(1e-9, g.hpwl));
  g.score = 50.0 + quality_points;
  g.report = util::format(
      "PLACEMENT GRADE: legal, HPWL %.1f (reference %.1f, ratio %.3f), "
      "score %.1f\n",
      g.hpwl, reference_hpwl, g.quality_ratio, g.score);
  return g;
}

PlaceGrade grade_placement_text(const gen::PlacementProblem& problem,
                                const place::Grid& grid,
                                const std::string& text,
                                double reference_hpwl) {
  place::GridPlacement gp;
  try {
    gp = parse_placement_text(text, problem.num_cells);
  } catch (const std::exception& e) {
    PlaceGrade g;
    g.reason = e.what();
    g.report = util::format("PLACEMENT GRADE: parse error (%s), score 0\n",
                            e.what());
    return g;
  }
  return grade_placement(problem, grid, gp, reference_hpwl);
}

std::vector<PlaceGrade> grade_placement_batch(
    const gen::PlacementProblem& problem, const place::Grid& grid,
    const std::vector<std::string>& submissions, double reference_hpwl) {
  std::vector<PlaceGrade> grades(submissions.size());
  util::parallel_for(
      0, static_cast<std::int64_t>(submissions.size()), 1,
      [&](std::int64_t s) {
        const auto i = static_cast<std::size_t>(s);
        grades[i] =
            grade_placement_text(problem, grid, submissions[i], reference_hpwl);
      });
  return grades;
}

}  // namespace l2l::grader
