#include "grader/route_grader.hpp"

#include <map>
#include <set>

#include "util/parallel.hpp"
#include "util/strings.hpp"

namespace l2l::grader {

using gen::GridPoint;

RouteGrade grade_routing(const gen::RoutingProblem& problem,
                         const route::RouteSolution& solution) {
  RouteGrade g;
  g.total_nets = static_cast<int>(problem.nets.size());

  // Solution nets by id.
  std::map<int, const route::NetRoute*> by_id;
  for (const auto& net : solution.nets) by_id[net.net_id] = &net;

  // Global overlap map: first net to claim a cell owns it.
  std::map<GridPoint, int> owner;

  for (const auto& pnet : problem.nets) {
    NetGrade ng;
    ng.net_id = pnet.id;
    const auto it = by_id.find(pnet.id);
    if (it == by_id.end() || it->second->cells.empty()) {
      ng.reason = "net missing from solution";
      g.nets.push_back(std::move(ng));
      continue;
    }
    const auto& cells = it->second->cells;

    std::set<GridPoint> cell_set;
    std::string reason;
    for (const auto& c : cells) {
      if (!problem.in_bounds(c)) {
        reason = util::format("cell (%d %d %d) out of bounds", c.x, c.y, c.layer);
        break;
      }
      if (problem.is_blocked(c)) {
        reason = util::format("cell (%d %d %d) on an obstacle", c.x, c.y, c.layer);
        break;
      }
      if (!cell_set.insert(c).second) {
        reason = util::format("duplicate cell (%d %d %d)", c.x, c.y, c.layer);
        break;
      }
      const auto [o, fresh] = owner.try_emplace(c, pnet.id);
      if (!fresh && o->second != pnet.id) {
        reason = util::format("cell (%d %d %d) overlaps net %d", c.x, c.y,
                              c.layer, o->second);
        break;
      }
    }
    if (reason.empty()) {
      for (const auto& pin : pnet.pins)
        if (!cell_set.count(pin)) {
          reason = util::format("pin (%d %d %d) not covered", pin.x, pin.y,
                                pin.layer);
          break;
        }
    }
    if (reason.empty()) {
      // Connectivity: flood fill over the net's cells.
      std::set<GridPoint> seen;
      std::vector<GridPoint> stack{cells.front()};
      while (!stack.empty()) {
        const auto c = stack.back();
        stack.pop_back();
        if (!seen.insert(c).second) continue;
        const GridPoint nbrs[6] = {
            {c.x + 1, c.y, c.layer}, {c.x - 1, c.y, c.layer},
            {c.x, c.y + 1, c.layer}, {c.x, c.y - 1, c.layer},
            {c.x, c.y, c.layer + 1}, {c.x, c.y, c.layer - 1}};
        for (const auto& n : nbrs)
          if (cell_set.count(n)) stack.push_back(n);
      }
      if (seen.size() != cell_set.size()) reason = "net is disconnected";
    }

    if (reason.empty()) {
      ng.legal = true;
      ng.wirelength = static_cast<int>(cells.size());
      ng.vias = route::count_vias(*it->second);
      g.total_wirelength += ng.wirelength;
      g.total_vias += ng.vias;
      ++g.legal_nets;
    } else {
      ng.reason = std::move(reason);
    }
    g.nets.push_back(std::move(ng));
  }

  g.score = g.total_nets > 0
                ? 100.0 * g.legal_nets / static_cast<double>(g.total_nets)
                : 0.0;

  g.report = util::format("ROUTING GRADE: %d/%d nets legal, score %.1f\n",
                          g.legal_nets, g.total_nets, g.score);
  g.report += util::format("total wirelength %d, total vias %d\n",
                           g.total_wirelength, g.total_vias);
  for (const auto& ng : g.nets) {
    if (ng.legal)
      g.report += util::format("  net %d: OK (wire %d, vias %d)\n", ng.net_id,
                               ng.wirelength, ng.vias);
    else
      g.report += util::format("  net %d: FAIL (%s)\n", ng.net_id,
                               ng.reason.c_str());
  }
  return g;
}

RouteGrade grade_routing_text(const gen::RoutingProblem& problem,
                              const std::string& solution_text) {
  route::RouteSolution sol;
  try {
    sol = route::parse_solution(solution_text);
  } catch (const std::exception& e) {
    RouteGrade g;
    g.total_nets = static_cast<int>(problem.nets.size());
    g.report = util::format("ROUTING GRADE: parse error (%s), score 0\n",
                            e.what());
    return g;
  }
  return grade_routing(problem, sol);
}

std::vector<RouteGrade> grade_routing_batch(
    const gen::RoutingProblem& problem,
    const std::vector<std::string>& submissions) {
  std::vector<RouteGrade> grades(submissions.size());
  util::parallel_for(0, static_cast<std::int64_t>(submissions.size()), 1,
                     [&](std::int64_t s) {
                       const auto i = static_cast<std::size_t>(s);
                       grades[i] = grade_routing_text(problem, submissions[i]);
                     });
  return grades;
}

}  // namespace l2l::grader
