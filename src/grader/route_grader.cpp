#include "grader/route_grader.hpp"

#include <chrono>
#include <map>
#include <set>
#include <string_view>
#include <thread>

#include "cache/cache.hpp"
#include "lint/lint.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sema/sema.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"

namespace l2l::grader {

using gen::GridPoint;

RouteGrade grade_routing(const gen::RoutingProblem& problem,
                         const route::RouteSolution& solution,
                         const util::Budget* budget) {
  obs::ScopedSpan span("grader.route.grade", "grader");
  RouteGrade g;
  g.total_nets = static_cast<int>(problem.nets.size());

  // Solution nets by id.
  std::map<int, const route::NetRoute*> by_id;
  for (const auto& net : solution.nets) by_id[net.net_id] = &net;

  // Global overlap map: first net to claim a cell owns it.
  std::map<GridPoint, int> owner;

  for (const auto& pnet : problem.nets) {
    // Resource guard: one step per net graded. Exhaustion keeps the
    // grades computed so far; ungraded nets earn nothing.
    if (budget && (!budget->consume(1) || budget->exhausted())) {
      g.status = budget->status();
      if (g.status.ok())
        g.status = util::Status::budget("grading budget exhausted");
      break;
    }
    NetGrade ng;
    ng.net_id = pnet.id;
    const auto it = by_id.find(pnet.id);
    if (it == by_id.end() || it->second->cells.empty()) {
      ng.reason = "net missing from solution";
      g.nets.push_back(std::move(ng));
      continue;
    }
    const auto& cells = it->second->cells;

    std::set<GridPoint> cell_set;
    std::string reason;
    for (const auto& c : cells) {
      if (!problem.in_bounds(c)) {
        reason = util::format("cell (%d %d %d) out of bounds", c.x, c.y, c.layer);
        break;
      }
      if (problem.is_blocked(c)) {
        reason = util::format("cell (%d %d %d) on an obstacle", c.x, c.y, c.layer);
        break;
      }
      if (!cell_set.insert(c).second) {
        reason = util::format("duplicate cell (%d %d %d)", c.x, c.y, c.layer);
        break;
      }
      const auto [o, fresh] = owner.try_emplace(c, pnet.id);
      if (!fresh && o->second != pnet.id) {
        reason = util::format("cell (%d %d %d) overlaps net %d", c.x, c.y,
                              c.layer, o->second);
        break;
      }
    }
    if (reason.empty()) {
      for (const auto& pin : pnet.pins)
        if (!cell_set.count(pin)) {
          reason = util::format("pin (%d %d %d) not covered", pin.x, pin.y,
                                pin.layer);
          break;
        }
    }
    if (reason.empty()) {
      // Connectivity: flood fill over the net's cells.
      std::set<GridPoint> seen;
      std::vector<GridPoint> stack{cells.front()};
      while (!stack.empty()) {
        const auto c = stack.back();
        stack.pop_back();
        if (!seen.insert(c).second) continue;
        const GridPoint nbrs[6] = {
            {c.x + 1, c.y, c.layer}, {c.x - 1, c.y, c.layer},
            {c.x, c.y + 1, c.layer}, {c.x, c.y - 1, c.layer},
            {c.x, c.y, c.layer + 1}, {c.x, c.y, c.layer - 1}};
        for (const auto& n : nbrs)
          if (cell_set.count(n)) stack.push_back(n);
      }
      if (seen.size() != cell_set.size()) reason = "net is disconnected";
    }

    if (reason.empty()) {
      ng.legal = true;
      ng.wirelength = static_cast<int>(cells.size());
      ng.vias = route::count_vias(*it->second);
      g.total_wirelength += ng.wirelength;
      g.total_vias += ng.vias;
      ++g.legal_nets;
    } else {
      ng.reason = std::move(reason);
    }
    g.nets.push_back(std::move(ng));
  }

  g.score = g.total_nets > 0
                ? 100.0 * g.legal_nets / static_cast<double>(g.total_nets)
                : 0.0;

  g.report = util::format("ROUTING GRADE: %d/%d nets legal, score %.1f\n",
                          g.legal_nets, g.total_nets, g.score);
  if (!g.status.ok())
    g.report += util::format("grading stopped early: %s\n",
                             g.status.to_string().c_str());
  g.report += util::format("total wirelength %d, total vias %d\n",
                           g.total_wirelength, g.total_vias);
  for (const auto& ng : g.nets) {
    if (ng.legal)
      g.report += util::format("  net %d: OK (wire %d, vias %d)\n", ng.net_id,
                               ng.wirelength, ng.vias);
    else
      g.report += util::format("  net %d: FAIL (%s)\n", ng.net_id,
                               ng.reason.c_str());
  }
  return g;
}

RouteGrade grade_routing_text(const gen::RoutingProblem& problem,
                              const std::string& solution_text,
                              const util::Budget* budget) {
  const auto parsed = route::parse_solution_lenient(solution_text);
  RouteGrade g = grade_routing(problem, parsed.solution, budget);
  if (!parsed.clean()) {
    g.diagnostics = parsed.diagnostics;
    // Partial credit stands on the salvaged nets; the header makes the
    // parse failure unmissable and the anchored list tells the student
    // exactly which lines to fix.
    std::string head = util::format(
        "parse error: %d malformed region(s); well-formed nets still "
        "graded\n",
        static_cast<int>(parsed.diagnostics.size()));
    head += util::render_diagnostics(parsed.diagnostics);
    g.report = head + g.report;
  }
  // Pre-grade lint: the L2L-Sxxx pack with the problem so the geometric
  // rules fire too. Stable rule IDs ride along in the report; the score
  // above is untouched, and a clean submission has zero findings.
  const auto lint_findings =
      lint::lint_route_solution(solution_text, &problem);
  if (!lint_findings.empty()) {
    g.lint = lint::to_diagnostics(lint_findings);
    std::string head =
        util::format("lint: %d finding(s) before grading\n",
                     static_cast<int>(lint_findings.size()));
    head += util::render_diagnostics(g.lint);
    g.report = head + g.report;
  }
  // Score-neutral semantic findings, same contract as the lint block: a
  // routing solution has no sema pass, so clean submissions render
  // byte-identically; a misdirected netlist/CNF/PLA gets explained.
  const auto sema_report = sema::analyze_text("<submission>", solution_text);
  if (!sema_report.findings.empty()) {
    g.sema = lint::to_diagnostics(sema_report.findings);
    std::string head =
        util::format("sema: %d semantic finding(s) before grading\n",
                     static_cast<int>(g.sema.size()));
    head += util::render_diagnostics(g.sema);
    g.report = head + g.report;
  }
  return g;
}

std::vector<RouteGrade> grade_routing_batch(
    const gen::RoutingProblem& problem,
    const std::vector<std::string>& submissions, const BatchOptions& opt) {
  obs::ScopedSpan span("grader.route.batch", "grader");
  obs::count("grader.route.batch_calls");
  obs::count("grader.route.submissions",
             static_cast<std::int64_t>(submissions.size()));
  std::vector<RouteGrade> grades(submissions.size());
  // Intra-batch dedup: a sequential exact-text pre-pass maps duplicate
  // submissions onto their first occurrence, so identical uploads are
  // graded once and copied. Sequential so the grade/copy split never
  // depends on the thread schedule; disabled with the cache kill switch
  // (L2L_CACHE=0 grades everything, the pre-dedup behavior) and under a
  // wall-clock limit (a deadline outcome is not content-addressable).
  std::vector<std::size_t> canonical(submissions.size());
  const bool dedup = cache::enabled() && opt.time_limit_ms < 0;
  {
    std::map<std::string_view, std::size_t> first;
    for (std::size_t i = 0; i < submissions.size(); ++i)
      canonical[i] =
          dedup ? first.emplace(submissions[i], i).first->second : i;
  }
  std::vector<std::size_t> work;
  for (std::size_t i = 0; i < submissions.size(); ++i)
    if (canonical[i] == i) work.push_back(i);
  util::parallel_for(
      0, static_cast<std::int64_t>(work.size()), 1,
      [&](std::int64_t s) {
        const auto i = work[static_cast<std::size_t>(s)];
        // One span per submission: the Chrome trace shows each worker
        // lane's grading intervals. Counters here are commutative sums,
        // deterministic because outcomes per submission are.
        obs::ScopedSpan sub_span("grader.route.submission", "grader");
        const int attempts = std::max(1, opt.max_attempts);
        for (int attempt = 0; attempt < attempts; ++attempt) {
          if (attempt > 0) obs::count("grader.route.retries");
          if (attempt > 0 && opt.backoff_base_ms > 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(
                static_cast<std::int64_t>(opt.backoff_base_ms) << (attempt - 1)));
          util::Budget guard;
          if (opt.step_limit >= 0) guard.set_step_limit(opt.step_limit);
          if (opt.time_limit_ms >= 0) guard.set_deadline_ms(opt.time_limit_ms);
          const util::Budget* budget =
              guard.has_step_limit() || guard.has_deadline() ? &guard : nullptr;
          try {
            grades[i] = grade_routing_text(problem, submissions[i], budget);
            break;  // deterministic outcome: retrying cannot change it
          } catch (const std::exception& e) {
            grades[i] = RouteGrade{};
            grades[i].total_nets = static_cast<int>(problem.nets.size());
            grades[i].status = util::Status::internal(e.what());
            grades[i].report = util::format(
                "ROUTING GRADE: internal error (%s), score 0\n", e.what());
          } catch (...) {
            grades[i] = RouteGrade{};
            grades[i].total_nets = static_cast<int>(problem.nets.size());
            grades[i].status = util::Status::internal("unknown error");
            grades[i].report =
                "ROUTING GRADE: internal error (unknown), score 0\n";
          }
        }
      });
  // Sequential epilogue: replay duplicates, then outcome tallies in
  // submission order.
  std::int64_t deduped = 0;
  for (std::size_t i = 0; i < submissions.size(); ++i)
    if (canonical[i] != i) {
      grades[i] = grades[canonical[i]];
      ++deduped;
    }
  if (obs::enabled()) {
    if (dedup) obs::count("grader.route.deduped", deduped);
    std::int64_t failed = 0;
    for (const auto& g : grades) failed += g.status.ok() ? 0 : 1;
    obs::count("grader.route.failed", failed);
    obs::count("grader.route.graded",
               static_cast<std::int64_t>(grades.size()) - failed);
  }
  return grades;
}

}  // namespace l2l::grader
