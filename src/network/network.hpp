#pragma once
// Multi-level Boolean logic networks, SIS-style [11,12]: a DAG of nodes,
// each holding a sum-of-products over its fanins. This is the substrate
// for logic synthesis (Weeks 3-4), technology mapping (Week 5), timing
// (Week 8), and the BDD-based network-repair project.

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cubes/cover.hpp"

namespace l2l::network {

using NodeId = int;
inline constexpr NodeId kNoNode = -1;

enum class NodeType {
  kInput,  ///< primary input
  kLogic,  ///< internal node with an SOP over its fanins
};

struct Node {
  std::string name;
  NodeType type = NodeType::kLogic;
  std::vector<NodeId> fanins;
  /// SOP over *local* fanin indices: variable i of the cover is fanins[i].
  /// A logic node with no fanins and a universal/empty cover is a constant.
  cubes::Cover cover;
};

class Network {
 public:
  explicit Network(std::string model_name = "top")
      : model_name_(std::move(model_name)) {}

  const std::string& model_name() const { return model_name_; }
  void set_model_name(std::string n) { model_name_ = std::move(n); }

  /// Add a primary input. Names must be unique across the network.
  NodeId add_input(const std::string& name);

  /// Add a logic node computing `cover` over `fanins` (cover arity must
  /// equal fanins.size()).
  NodeId add_logic(const std::string& name, std::vector<NodeId> fanins,
                   cubes::Cover cover);

  /// Add a constant node (cover over zero variables).
  NodeId add_constant(const std::string& name, bool value);

  /// Declare a node as a primary output (may be repeated nodes).
  void mark_output(NodeId id);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const Node& node(NodeId id) const { return nodes_[static_cast<std::size_t>(id)]; }
  Node& node(NodeId id) { return nodes_[static_cast<std::size_t>(id)]; }

  const std::vector<NodeId>& inputs() const { return inputs_; }
  const std::vector<NodeId>& outputs() const { return outputs_; }

  std::optional<NodeId> find(const std::string& name) const;

  /// Fanouts (derived on demand; invalidated by structural edits).
  std::vector<std::vector<NodeId>> fanouts() const;

  /// Topological order over all nodes (inputs first). Throws on cycles.
  std::vector<NodeId> topological_order() const;

  /// Logic depth per node (inputs at level 0).
  std::vector<int> levels() const;

  /// Total SOP literal count over all logic nodes -- the multi-level cost.
  int num_literals() const;
  int num_logic_nodes() const;

  /// Evaluate all nodes given values for the primary inputs (indexed in
  /// inputs() order). Returns a value per node id.
  std::vector<bool> simulate(const std::vector<bool>& input_values) const;

  /// 64 parallel patterns at once (bit i of each word = pattern i).
  std::vector<std::uint64_t> simulate64(
      const std::vector<std::uint64_t>& input_words) const;

  /// Replace a fanin edge: in node `id`, replace fanin `old_fanin` with
  /// `new_fanin` (cover unchanged -- caller guarantees compatibility).
  void replace_fanin(NodeId id, NodeId old_fanin, NodeId new_fanin);

  /// Replace a node's function in place.
  void set_function(NodeId id, std::vector<NodeId> fanins, cubes::Cover cover);

  /// Drop logic nodes not reachable from any output. Returns removed count.
  /// Node ids are preserved (removed nodes become tombstones excluded from
  /// traversals); use compact() to renumber.
  int sweep_dangling();

  bool is_dead(NodeId id) const { return dead_[static_cast<std::size_t>(id)]; }

  /// Structural sanity checks (ids in range, arities match, acyclic, no
  /// dead node referenced). Throws std::logic_error on violation.
  void validate() const;

 private:
  void check_id(NodeId id) const;

  std::string model_name_;
  std::vector<Node> nodes_;
  std::vector<bool> dead_;
  std::vector<NodeId> inputs_;
  std::vector<NodeId> outputs_;
  std::unordered_map<std::string, NodeId> by_name_;
};

}  // namespace l2l::network
