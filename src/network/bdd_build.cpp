#include "network/bdd_build.hpp"

#include <stdexcept>

namespace l2l::network {

NetworkBdds build_bdds(const Network& net, bdd::Manager& mgr) {
  if (mgr.num_vars() < static_cast<int>(net.inputs().size()))
    throw std::invalid_argument("build_bdds: manager has too few variables");
  NetworkBdds out;
  out.node.resize(static_cast<std::size_t>(net.num_nodes()));
  for (std::size_t i = 0; i < net.inputs().size(); ++i)
    out.node[static_cast<std::size_t>(net.inputs()[i])] =
        mgr.var(static_cast<int>(i));

  for (const NodeId id : net.topological_order()) {
    const auto& n = net.node(id);
    if (n.type == NodeType::kInput) continue;
    bdd::Bdd f = mgr.zero();
    for (const auto& cube : n.cover.cubes()) {
      bdd::Bdd term = mgr.one();
      for (int k = 0; k < static_cast<int>(n.fanins.size()); ++k) {
        const auto code = cube.code(k);
        if (code == cubes::Pcn::kDontCare) continue;
        const auto& fi = out.node[static_cast<std::size_t>(n.fanins[static_cast<std::size_t>(k)])];
        term = term & (code == cubes::Pcn::kPos ? fi : !fi);
      }
      f = f | term;
    }
    out.node[static_cast<std::size_t>(id)] = std::move(f);
  }
  for (const NodeId o : net.outputs())
    out.outputs.push_back(out.node[static_cast<std::size_t>(o)]);
  return out;
}

}  // namespace l2l::network
