#include "network/equivalence.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "network/bdd_build.hpp"
#include "network/cnf.hpp"

namespace l2l::network {
namespace {

/// Pair up inputs and outputs of the two networks by name.
struct InterfaceMatch {
  // For each input of `a` (in order): the matching input index of `b`.
  std::vector<std::size_t> b_input_for_a;
  // Pairs of (a-output position, b-output position) with matching names.
  std::vector<std::pair<std::size_t, std::size_t>> output_pairs;
};

InterfaceMatch match_interfaces(const Network& a, const Network& b) {
  InterfaceMatch m;
  if (a.inputs().size() != b.inputs().size() ||
      a.outputs().size() != b.outputs().size())
    throw std::invalid_argument("equivalence: interface size mismatch");
  std::unordered_map<std::string, std::size_t> b_inputs;
  for (std::size_t i = 0; i < b.inputs().size(); ++i)
    b_inputs[b.node(b.inputs()[i]).name] = i;
  for (std::size_t i = 0; i < a.inputs().size(); ++i) {
    const auto it = b_inputs.find(a.node(a.inputs()[i]).name);
    if (it == b_inputs.end())
      throw std::invalid_argument("equivalence: unmatched input " +
                                  a.node(a.inputs()[i]).name);
    m.b_input_for_a.push_back(it->second);
  }
  std::unordered_map<std::string, std::size_t> b_outputs;
  for (std::size_t i = 0; i < b.outputs().size(); ++i)
    b_outputs[b.node(b.outputs()[i]).name] = i;
  for (std::size_t i = 0; i < a.outputs().size(); ++i) {
    const auto it = b_outputs.find(a.node(a.outputs()[i]).name);
    if (it == b_outputs.end())
      throw std::invalid_argument("equivalence: unmatched output " +
                                  a.node(a.outputs()[i]).name);
    m.output_pairs.emplace_back(i, it->second);
  }
  return m;
}

EquivalenceResult check_bdd(const Network& a, const Network& b,
                            const InterfaceMatch& match) {
  bdd::Manager mgr(static_cast<int>(a.inputs().size()));
  const auto abdds = build_bdds(a, mgr);

  // Build b's BDDs in the same manager with inputs remapped by name.
  NetworkBdds bbdds;
  bbdds.node.resize(static_cast<std::size_t>(b.num_nodes()));
  for (std::size_t i = 0; i < a.inputs().size(); ++i)
    bbdds.node[static_cast<std::size_t>(b.inputs()[match.b_input_for_a[i]])] =
        mgr.var(static_cast<int>(i));
  for (const NodeId id : b.topological_order()) {
    const auto& n = b.node(id);
    if (n.type == NodeType::kInput) continue;
    bdd::Bdd f = mgr.zero();
    for (const auto& cube : n.cover.cubes()) {
      bdd::Bdd term = mgr.one();
      for (int k = 0; k < static_cast<int>(n.fanins.size()); ++k) {
        const auto code = cube.code(k);
        if (code == cubes::Pcn::kDontCare) continue;
        const auto& fi = bbdds.node[static_cast<std::size_t>(n.fanins[static_cast<std::size_t>(k)])];
        term = term & (code == cubes::Pcn::kPos ? fi : !fi);
      }
      f = f | term;
    }
    bbdds.node[static_cast<std::size_t>(id)] = std::move(f);
  }

  EquivalenceResult res;
  for (const auto& [ai, bi] : match.output_pairs) {
    const auto& fa = abdds.node[static_cast<std::size_t>(a.outputs()[ai])];
    const auto& fb = bbdds.node[static_cast<std::size_t>(b.outputs()[bi])];
    if (fa == fb) continue;  // canonical: O(1) comparison
    res.equivalent = false;
    res.failing_output = a.node(a.outputs()[ai]).name;
    const auto diff = fa ^ fb;
    const auto assignment = diff.one_sat();
    std::vector<bool> cex(a.inputs().size(), false);
    if (assignment)
      for (std::size_t v = 0; v < cex.size(); ++v) cex[v] = (*assignment)[v] == 1;
    res.counterexample = cex;
    return res;
  }
  res.equivalent = true;
  return res;
}

EquivalenceResult check_sat(const Network& a, const Network& b,
                            const InterfaceMatch& match) {
  sat::Solver solver;
  const auto amap = encode_network(a, solver);
  const auto bmap = encode_network(b, solver);

  using sat::mk_lit;
  // Tie matched inputs together.
  for (std::size_t i = 0; i < a.inputs().size(); ++i) {
    const sat::Var va = amap.node_var[static_cast<std::size_t>(a.inputs()[i])];
    const sat::Var vb =
        bmap.node_var[static_cast<std::size_t>(b.inputs()[match.b_input_for_a[i]])];
    solver.add_clause({mk_lit(va, true), mk_lit(vb, false)});
    solver.add_clause({mk_lit(va, false), mk_lit(vb, true)});
  }
  // Miter: xor each output pair; assert at least one differs.
  std::vector<sat::Lit> any_diff;
  std::vector<std::pair<sat::Var, std::size_t>> diff_vars;  // (xor var, pair idx)
  for (std::size_t p = 0; p < match.output_pairs.size(); ++p) {
    const auto& [ai, bi] = match.output_pairs[p];
    const sat::Var ya = amap.node_var[static_cast<std::size_t>(a.outputs()[ai])];
    const sat::Var yb = bmap.node_var[static_cast<std::size_t>(b.outputs()[bi])];
    const sat::Var d = solver.new_var();
    // d <-> (ya xor yb)
    solver.add_clause({mk_lit(d, true), mk_lit(ya, false), mk_lit(yb, false)});
    solver.add_clause({mk_lit(d, true), mk_lit(ya, true), mk_lit(yb, true)});
    solver.add_clause({mk_lit(d, false), mk_lit(ya, false), mk_lit(yb, true)});
    solver.add_clause({mk_lit(d, false), mk_lit(ya, true), mk_lit(yb, false)});
    any_diff.push_back(mk_lit(d, false));
    diff_vars.emplace_back(d, p);
  }
  solver.add_clause(any_diff);

  EquivalenceResult res;
  const auto r = solver.solve();
  if (r == sat::LBool::kFalse) {
    res.equivalent = true;
    return res;
  }
  res.equivalent = false;
  std::vector<bool> cex(a.inputs().size(), false);
  for (std::size_t i = 0; i < a.inputs().size(); ++i)
    cex[i] = solver.model_value(amap.node_var[static_cast<std::size_t>(a.inputs()[i])]);
  res.counterexample = cex;
  for (const auto& [d, p] : diff_vars)
    if (solver.model_value(d)) {
      res.failing_output = a.node(a.outputs()[match.output_pairs[p].first]).name;
      break;
    }
  return res;
}

}  // namespace

EquivalenceResult check_equivalence(const Network& a, const Network& b,
                                    EquivalenceMethod method) {
  const auto match = match_interfaces(a, b);
  return method == EquivalenceMethod::kBdd ? check_bdd(a, b, match)
                                           : check_sat(a, b, match);
}

}  // namespace l2l::network
