#pragma once
// Building BDDs for network signals ("Building" in the Week-2 concept map):
// one BDD variable per primary input, composed bottom-up in topological
// order.

#include "bdd/bdd.hpp"
#include "network/network.hpp"

namespace l2l::network {

struct NetworkBdds {
  /// BDD per node id (null handles for dead nodes).
  std::vector<bdd::Bdd> node;
  /// BDDs of the primary outputs, in outputs() order.
  std::vector<bdd::Bdd> outputs;
};

/// Build BDDs for every node. `mgr` must have at least as many variables
/// as the network has primary inputs; input k maps to manager variable k.
NetworkBdds build_bdds(const Network& net, bdd::Manager& mgr);

}  // namespace l2l::network
