#include "network/blif.hpp"

#include <set>
#include <sstream>
#include <stdexcept>

#include "cubes/urp.hpp"
#include "util/strings.hpp"

namespace l2l::network {
namespace {

std::string excerpt(std::string_view t) {
  constexpr std::size_t kMax = 60;
  if (t.size() <= kMax) return std::string(t);
  return std::string(t.substr(0, kMax)) + "...";
}

}  // namespace

BlifStructure parse_blif_structure(const std::string& text) {
  BlifStructure out;
  auto diag = [&](int line, std::string msg) {
    out.diagnostics.push_back(util::make_error(line, line > 0 ? 1 : 0,
                                               std::move(msg)));
  };

  // Pass 1: tokenize into directives with continuation (\) support. Each
  // logical line keeps the physical line number it started on, so every
  // diagnostic below lands where the student's editor can jump to.
  std::istringstream in(text);
  std::string line, pending;
  int lineno = 0, pending_line = 0;
  std::vector<std::pair<std::string, int>> lines;
  while (std::getline(in, line)) {
    ++lineno;
    auto t = std::string(util::trim(line));
    const auto hash = t.find('#');
    if (hash != std::string::npos) t = std::string(util::trim(t.substr(0, hash)));
    if (t.empty()) continue;
    if (pending.empty()) pending_line = lineno;
    if (t.back() == '\\') {
      pending += t.substr(0, t.size() - 1) + " ";
      continue;
    }
    lines.emplace_back(pending + t, pending_line);
    pending.clear();
  }
  if (!pending.empty())
    diag(pending_line, "BLIF: dangling line continuation");

  BlifGate* current = nullptr;
  for (const auto& [l, ln] : lines) {
    if (l[0] == '.') {
      const auto tok = util::split(l);
      current = nullptr;
      if (tok[0] == ".model") {
        if (tok.size() > 1) out.model = tok[1];
      } else if (tok[0] == ".inputs") {
        for (std::size_t k = 1; k < tok.size(); ++k)
          out.inputs.emplace_back(tok[k], ln);
      } else if (tok[0] == ".outputs") {
        for (std::size_t k = 1; k < tok.size(); ++k)
          out.outputs.emplace_back(tok[k], ln);
      } else if (tok[0] == ".names") {
        if (tok.size() < 2) {
          diag(ln, "BLIF: .names needs an output signal");
          continue;
        }
        BlifGate gate;
        gate.fanins.assign(tok.begin() + 1, tok.end() - 1);
        gate.output = tok.back();
        gate.line = ln;
        out.gates.push_back(std::move(gate));
        current = &out.gates.back();
      } else if (tok[0] == ".end") {
        break;
      } else if (tok[0] == ".latch") {
        diag(ln, "BLIF: sequential elements (.latch) are not supported");
      } else {
        diag(ln, "BLIF: unsupported directive " + tok[0]);
      }
      continue;
    }
    if (!current) {
      diag(ln, "BLIF: cube line outside a .names block");
      continue;
    }
    current->rows.emplace_back(l, ln);
  }
  return out;
}

ParsedBlif parse_blif_lenient(const std::string& text) {
  ParsedBlif out;
  auto diag = [&](int line, std::string msg) {
    out.diagnostics.push_back(util::make_error(line, line > 0 ? 1 : 0,
                                               std::move(msg)));
  };

  // Pass 1 is shared with the semantic analyzer (see BlifStructure).
  BlifStructure structure = parse_blif_structure(text);
  out.diagnostics = structure.diagnostics;
  const std::vector<BlifGate>& blocks = structure.gates;

  Network& net = out.network;
  net = Network(structure.model);
  std::set<std::string> declared_inputs;
  for (const auto& [n, ln] : structure.inputs) {
    if (net.find(n)) {
      diag(ln, "BLIF: duplicate input " + n);
      continue;
    }
    declared_inputs.insert(n);
    net.add_input(n);
  }

  // Create logic nodes in dependency order: blocks may reference each other
  // in any order, so iterate until all are placed (detects cycles).
  std::vector<bool> placed(blocks.size(), false);
  std::size_t remaining = blocks.size();
  while (remaining > 0) {
    bool progress = false;
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      if (placed[b]) continue;
      const auto& blk = blocks[b];
      const int arity = static_cast<int>(blk.fanins.size());
      bool ready = true;
      std::vector<NodeId> fanins;
      for (int k = 0; k < arity; ++k) {
        const auto id = net.find(blk.fanins[static_cast<std::size_t>(k)]);
        if (!id) {
          ready = false;
          break;
        }
        fanins.push_back(*id);
      }
      if (!ready) continue;
      if (net.find(blk.output)) {
        // The first driver wins and this block is dropped so the network
        // stays well-formed. A .names output that shadows a declared
        // model input gets its own diagnostic: it is a different mistake
        // (the "input" was never free), and sema's multi-driven pass
        // relies on salvaged networks never aliasing an input name.
        if (declared_inputs.count(blk.output) > 0)
          diag(blk.line, "BLIF: .names output '" + blk.output +
                             "' is also a declared model input");
        else
          diag(blk.line, "BLIF: signal '" + blk.output + "' driven twice");
        placed[b] = true;
        --remaining;
        progress = true;
        continue;
      }

      // Parse cube lines: "<inputs> <0|1>" (or just "<0|1>" for arity 0).
      cubes::Cover on(arity);
      cubes::Cover off(arity);
      bool rows_ok = true;
      for (const auto& [cl, cl_line] : blk.rows) {
        const auto tok = util::split(cl);
        std::string in_plane, out_char;
        if (arity == 0) {
          if (tok.size() != 1) {
            diag(cl_line, "BLIF: bad constant cube line");
            rows_ok = false;
            continue;
          }
          out_char = tok[0];
        } else {
          if (tok.size() != 2) {
            diag(cl_line, "BLIF: bad cube line '" + excerpt(cl) + "'");
            rows_ok = false;
            continue;
          }
          in_plane = tok[0];
          out_char = tok[1];
          if (static_cast<int>(in_plane.size()) != arity) {
            diag(cl_line,
                 "BLIF: cube width mismatch in '" + excerpt(cl) + "'");
            rows_ok = false;
            continue;
          }
        }
        if (out_char != "0" && out_char != "1") {
          diag(cl_line, "BLIF: output column must be 0 or 1");
          rows_ok = false;
          continue;
        }
        try {
          auto& target = out_char == "1" ? on : off;
          target.add(arity == 0 ? cubes::Cube(0)
                                : cubes::Cube::parse(in_plane));
        } catch (const std::exception& e) {
          diag(cl_line, std::string("BLIF: ") + e.what());
          rows_ok = false;
        }
      }
      if (!on.empty() && !off.empty()) {
        diag(blk.line, "BLIF: mixed 0/1 output columns in one .names block");
        rows_ok = false;
      }
      if (rows_ok) {
        // BLIF semantics: 0-rows describe the OFF-set; ON = complement.
        cubes::Cover cover = !off.empty() ? cubes::complement(off) : on;
        net.add_logic(blk.output, std::move(fanins), std::move(cover));
      }
      // A block with bad rows is dropped (its output stays undriven and is
      // reported below if anything needs it), but parsing continues.
      placed[b] = true;
      --remaining;
      progress = true;
    }
    if (!progress) {
      int first_line = 0;
      for (std::size_t b = 0; b < blocks.size(); ++b)
        if (!placed[b]) {
          if (first_line == 0) first_line = blocks[b].line;
        }
      diag(first_line,
           "BLIF: unresolvable signal references (cycle or missing driver)");
      break;
    }
  }

  for (const auto& [n, ln] : structure.outputs) {
    const auto id = net.find(n);
    if (!id) {
      diag(ln, "BLIF: undriven output " + n);
      continue;
    }
    net.mark_output(*id);
  }
  try {
    net.validate();
  } catch (const std::exception& e) {
    diag(0, std::string("BLIF: ") + e.what());
  }
  return out;
}

Network parse_blif(const std::string& text) {
  auto parsed = parse_blif_lenient(text);
  if (!parsed.clean())
    throw std::invalid_argument(parsed.diagnostics.front().to_string());
  return std::move(parsed.network);
}

std::string write_blif(const Network& net) {
  std::string out = ".model " + net.model_name() + "\n.inputs";
  for (const NodeId id : net.inputs()) out += " " + net.node(id).name;
  out += "\n.outputs";
  for (const NodeId id : net.outputs()) out += " " + net.node(id).name;
  out += "\n";
  for (const NodeId id : net.topological_order()) {
    const auto& n = net.node(id);
    if (n.type != NodeType::kLogic) continue;
    out += ".names";
    for (const NodeId f : n.fanins) out += " " + net.node(f).name;
    out += " " + n.name + "\n";
    if (n.fanins.empty()) {
      // Constant: universal cover = 1 (emit "1"), empty cover = 0 (no rows).
      if (!n.cover.empty()) out += "1\n";
    } else {
      for (const auto& c : n.cover.cubes())
        out += c.to_string() + " 1\n";
    }
  }
  out += ".end\n";
  return out;
}

}  // namespace l2l::network
