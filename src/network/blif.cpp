#include "network/blif.hpp"

#include <sstream>
#include <stdexcept>

#include "cubes/urp.hpp"
#include "util/strings.hpp"

namespace l2l::network {
namespace {

/// One .names block accumulated during parsing.
struct NamesBlock {
  std::vector<std::string> signals;  // fanin names + output name (last)
  std::vector<std::string> cube_lines;
};

}  // namespace

Network parse_blif(const std::string& text) {
  std::string model = "top";
  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
  std::vector<NamesBlock> blocks;

  // Pass 1: tokenize into directives with continuation (\) support.
  std::istringstream in(text);
  std::string line, pending;
  std::vector<std::string> lines;
  while (std::getline(in, line)) {
    auto t = std::string(util::trim(line));
    const auto hash = t.find('#');
    if (hash != std::string::npos) t = std::string(util::trim(t.substr(0, hash)));
    if (t.empty()) continue;
    if (t.back() == '\\') {
      pending += t.substr(0, t.size() - 1) + " ";
      continue;
    }
    lines.push_back(pending + t);
    pending.clear();
  }
  if (!pending.empty())
    throw std::invalid_argument("BLIF: dangling line continuation");

  NamesBlock* current = nullptr;
  for (const auto& l : lines) {
    if (l[0] == '.') {
      const auto tok = util::split(l);
      current = nullptr;
      if (tok[0] == ".model") {
        if (tok.size() > 1) model = tok[1];
      } else if (tok[0] == ".inputs") {
        input_names.insert(input_names.end(), tok.begin() + 1, tok.end());
      } else if (tok[0] == ".outputs") {
        output_names.insert(output_names.end(), tok.begin() + 1, tok.end());
      } else if (tok[0] == ".names") {
        if (tok.size() < 2)
          throw std::invalid_argument("BLIF: .names needs an output signal");
        blocks.push_back(NamesBlock{{tok.begin() + 1, tok.end()}, {}});
        current = &blocks.back();
      } else if (tok[0] == ".end") {
        break;
      } else if (tok[0] == ".latch") {
        throw std::invalid_argument(
            "BLIF: sequential elements (.latch) are not supported");
      } else {
        throw std::invalid_argument("BLIF: unsupported directive " + tok[0]);
      }
      continue;
    }
    if (!current)
      throw std::invalid_argument("BLIF: cube line outside a .names block");
    current->cube_lines.push_back(l);
  }

  Network net(model);
  for (const auto& n : input_names) net.add_input(n);

  // Create logic nodes in dependency order: blocks may reference each other
  // in any order, so iterate until all are placed (detects cycles).
  std::vector<bool> placed(blocks.size(), false);
  std::size_t remaining = blocks.size();
  while (remaining > 0) {
    bool progress = false;
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      if (placed[b]) continue;
      const auto& blk = blocks[b];
      const int arity = static_cast<int>(blk.signals.size()) - 1;
      bool ready = true;
      std::vector<NodeId> fanins;
      for (int k = 0; k < arity; ++k) {
        const auto id = net.find(blk.signals[static_cast<std::size_t>(k)]);
        if (!id) {
          ready = false;
          break;
        }
        fanins.push_back(*id);
      }
      if (!ready) continue;

      // Parse cube lines: "<inputs> <0|1>" (or just "<0|1>" for arity 0).
      cubes::Cover on(arity);
      cubes::Cover off(arity);
      for (const auto& cl : blk.cube_lines) {
        const auto tok = util::split(cl);
        std::string in_plane, out_char;
        if (arity == 0) {
          if (tok.size() != 1)
            throw std::invalid_argument("BLIF: bad constant cube line");
          out_char = tok[0];
        } else {
          if (tok.size() != 2)
            throw std::invalid_argument("BLIF: bad cube line '" + cl + "'");
          in_plane = tok[0];
          out_char = tok[1];
          if (static_cast<int>(in_plane.size()) != arity)
            throw std::invalid_argument("BLIF: cube width mismatch in '" + cl + "'");
        }
        if (out_char != "0" && out_char != "1")
          throw std::invalid_argument("BLIF: output column must be 0 or 1");
        auto& target = out_char == "1" ? on : off;
        target.add(arity == 0 ? cubes::Cube(0) : cubes::Cube::parse(in_plane));
      }
      if (!on.empty() && !off.empty())
        throw std::invalid_argument(
            "BLIF: mixed 0/1 output columns in one .names block");
      // BLIF semantics: 0-rows describe the OFF-set; ON = complement.
      cubes::Cover cover = !off.empty() ? cubes::complement(off) : on;
      net.add_logic(blk.signals.back(), std::move(fanins), std::move(cover));
      placed[b] = true;
      --remaining;
      progress = true;
    }
    if (!progress)
      throw std::invalid_argument(
          "BLIF: unresolvable signal references (cycle or missing driver)");
  }

  for (const auto& n : output_names) {
    const auto id = net.find(n);
    if (!id) throw std::invalid_argument("BLIF: undriven output " + n);
    net.mark_output(*id);
  }
  net.validate();
  return net;
}

std::string write_blif(const Network& net) {
  std::string out = ".model " + net.model_name() + "\n.inputs";
  for (const NodeId id : net.inputs()) out += " " + net.node(id).name;
  out += "\n.outputs";
  for (const NodeId id : net.outputs()) out += " " + net.node(id).name;
  out += "\n";
  for (const NodeId id : net.topological_order()) {
    const auto& n = net.node(id);
    if (n.type != NodeType::kLogic) continue;
    out += ".names";
    for (const NodeId f : n.fanins) out += " " + net.node(f).name;
    out += " " + n.name + "\n";
    if (n.fanins.empty()) {
      // Constant: universal cover = 1 (emit "1"), empty cover = 0 (no rows).
      if (!n.cover.empty()) out += "1\n";
    } else {
      for (const auto& c : n.cover.cubes())
        out += c.to_string() + " 1\n";
    }
  }
  out += ".end\n";
  return out;
}

}  // namespace l2l::network
