#pragma once
// Tseitin encoding of logic networks into CNF, and SAT-based equivalence
// checking via miters (Week 2: "Formal Logic Verification: BDDs and SAT").

#include <unordered_map>

#include "network/network.hpp"
#include "sat/solver.hpp"

namespace l2l::network {

/// Result of encoding a network into a SAT solver.
struct CnfMapping {
  /// SAT variable for each network node id (index = NodeId).
  std::vector<sat::Var> node_var;
};

/// Encode the combinational semantics of `net` into `solver` with one SAT
/// variable per node (Tseitin: cube auxiliaries for multi-cube SOPs).
/// Returns the node-to-variable mapping.
CnfMapping encode_network(const Network& net, sat::Solver& solver);

}  // namespace l2l::network
