#pragma once
// BLIF (Berkeley Logic Interchange Format) reader/writer -- the netlist
// format of SIS [11], and the interchange format of this repository's
// synthesis flow. Combinational subset: .model/.inputs/.outputs/.names/.end
// (latches are rejected; the course scoped sequential logic out, see §2.1).

#include <string>
#include <vector>

#include "network/network.hpp"
#include "util/status.hpp"

namespace l2l::network {

/// Result of the collecting parse below: every salvageable construct
/// lands in the network, every defect in a line-anchored diagnostic.
struct ParsedBlif {
  Network network;
  std::vector<util::Diagnostic> diagnostics;  ///< empty = clean parse

  bool clean() const { return diagnostics.empty(); }
};

/// Tolerant parse reporting ALL defects in one pass (a student fixing a
/// hand-written netlist learns every mistake from a single upload).
/// Never throws on malformed input: bad cube rows, unknown directives,
/// multiply-driven or undriven signals, and cycles each become a
/// diagnostic while the rest of the network is salvaged.
ParsedBlif parse_blif_lenient(const std::string& text);

/// Strict parse: throws std::invalid_argument carrying the first
/// diagnostic when anything is malformed or unsupported.
Network parse_blif(const std::string& text);

/// Serialize a network to BLIF (dead nodes skipped).
std::string write_blif(const Network& net);

}  // namespace l2l::network
