#pragma once
// BLIF (Berkeley Logic Interchange Format) reader/writer -- the netlist
// format of SIS [11], and the interchange format of this repository's
// synthesis flow. Combinational subset: .model/.inputs/.outputs/.names/.end
// (latches are rejected; the course scoped sequential logic out, see §2.1).

#include <string>
#include <vector>

#include "network/network.hpp"
#include "util/status.hpp"

namespace l2l::network {

/// Result of the collecting parse below: every salvageable construct
/// lands in the network, every defect in a line-anchored diagnostic.
struct ParsedBlif {
  Network network;
  std::vector<util::Diagnostic> diagnostics;  ///< empty = clean parse

  bool clean() const { return diagnostics.empty(); }
};

/// One .names block as written: fanin names, the driven output name, and
/// the raw truth-table rows with the physical line each started on.
struct BlifGate {
  std::vector<std::string> fanins;  ///< may be empty (constant block)
  std::string output;
  int line = 0;  ///< the .names directive's line (1-based)
  std::vector<std::pair<std::string, int>> rows;  ///< raw cube rows + lines
};

/// The name-level structure of a BLIF file: the directive skeleton before
/// any Network is built. Unlike network::Network -- which is acyclic by
/// construction (add_logic requires fanins to already exist) -- this view
/// preserves cycles, multiple drivers, and dangling references exactly as
/// the student wrote them, so the semantic analyzer (l2l::sema) can
/// diagnose them with line anchors instead of losing them to salvage.
struct BlifStructure {
  std::string model = "top";
  std::vector<std::pair<std::string, int>> inputs;   ///< name, decl line
  std::vector<std::pair<std::string, int>> outputs;  ///< name, decl line
  std::vector<BlifGate> gates;                       ///< in file order
  /// Pass-1 defects only (dangling continuation, unsupported directives,
  /// cube rows outside any block). Name-level problems -- cycles, missing
  /// or duplicate drivers -- are NOT diagnosed here; they are the
  /// analyzer's and the lenient parser's job.
  std::vector<util::Diagnostic> diagnostics;
};

/// Tokenize-and-collect pass shared by parse_blif_lenient and l2l::sema:
/// continuation-aware logical lines, '#' comments stripped, directives
/// sorted into the structure above. Never throws.
BlifStructure parse_blif_structure(const std::string& text);

/// Tolerant parse reporting ALL defects in one pass (a student fixing a
/// hand-written netlist learns every mistake from a single upload).
/// Never throws on malformed input: bad cube rows, unknown directives,
/// multiply-driven or undriven signals, and cycles each become a
/// diagnostic while the rest of the network is salvaged.
ParsedBlif parse_blif_lenient(const std::string& text);

/// Strict parse: throws std::invalid_argument carrying the first
/// diagnostic when anything is malformed or unsupported.
Network parse_blif(const std::string& text);

/// Serialize a network to BLIF (dead nodes skipped).
std::string write_blif(const Network& net);

}  // namespace l2l::network
