#pragma once
// BLIF (Berkeley Logic Interchange Format) reader/writer -- the netlist
// format of SIS [11], and the interchange format of this repository's
// synthesis flow. Combinational subset: .model/.inputs/.outputs/.names/.end
// (latches are rejected; the course scoped sequential logic out, see §2.1).

#include <string>

#include "network/network.hpp"

namespace l2l::network {

/// Parse BLIF text into a Network. Throws std::invalid_argument on
/// malformed input or unsupported constructs.
Network parse_blif(const std::string& text);

/// Serialize a network to BLIF (dead nodes skipped).
std::string write_blif(const Network& net);

}  // namespace l2l::network
