#include "network/cnf.hpp"

#include <stdexcept>

namespace l2l::network {

CnfMapping encode_network(const Network& net, sat::Solver& solver) {
  CnfMapping map;
  map.node_var.assign(static_cast<std::size_t>(net.num_nodes()), -1);
  for (const NodeId id : net.topological_order())
    map.node_var[static_cast<std::size_t>(id)] = solver.new_var();

  using sat::Lit;
  using sat::mk_lit;

  for (const NodeId id : net.topological_order()) {
    const auto& n = net.node(id);
    if (n.type == NodeType::kInput) continue;
    const sat::Var y = map.node_var[static_cast<std::size_t>(id)];

    // Constant node.
    if (n.fanins.empty()) {
      solver.add_unit(mk_lit(y, n.cover.empty()));
      continue;
    }

    // Literal of local fanin k under PCN code.
    auto fanin_lit = [&](const cubes::Cube& c, int k) {
      const sat::Var xv = map.node_var[static_cast<std::size_t>(n.fanins[static_cast<std::size_t>(k)])];
      return mk_lit(xv, c.code(k) == cubes::Pcn::kNeg);
    };

    if (n.cover.empty()) {  // constant 0 despite fanins
      solver.add_unit(mk_lit(y, true));
      continue;
    }

    std::vector<Lit> or_clause;  // (z1 | z2 | ... | ~y)
    for (const auto& cube : n.cover.cubes()) {
      std::vector<int> lits_idx;
      for (int k = 0; k < static_cast<int>(n.fanins.size()); ++k)
        if (cube.code(k) != cubes::Pcn::kDontCare) lits_idx.push_back(k);

      if (lits_idx.empty()) {
        // Universal cube: y is constant 1.
        or_clause.clear();
        solver.add_unit(mk_lit(y, false));
        break;
      }

      Lit z;
      if (n.cover.size() == 1) {
        // Single cube: y <-> AND(lits). Encode directly on y.
        for (const int k : lits_idx)
          solver.add_clause({mk_lit(y, true), fanin_lit(cube, k)});  // y -> lit
        std::vector<Lit> imp;  // AND(lits) -> y
        for (const int k : lits_idx) imp.push_back(~fanin_lit(cube, k));
        imp.push_back(mk_lit(y, false));
        solver.add_clause(imp);
        or_clause.clear();
        break;
      }
      if (lits_idx.size() == 1) {
        z = fanin_lit(cube, lits_idx[0]);  // single literal: no aux needed
      } else {
        const sat::Var zv = solver.new_var();
        z = mk_lit(zv, false);
        for (const int k : lits_idx)
          solver.add_clause({~z, fanin_lit(cube, k)});  // z -> lit
        std::vector<Lit> imp;
        for (const int k : lits_idx) imp.push_back(~fanin_lit(cube, k));
        imp.push_back(z);
        solver.add_clause(imp);  // AND(lits) -> z
      }
      solver.add_clause({~z, mk_lit(y, false)});  // z -> y
      or_clause.push_back(z);
    }
    if (!or_clause.empty()) {
      or_clause.push_back(mk_lit(y, true));  // y -> OR(z)
      solver.add_clause(or_clause);
    }
  }
  return map;
}

}  // namespace l2l::network
