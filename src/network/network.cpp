#include "network/network.hpp"

#include <algorithm>
#include <stdexcept>

namespace l2l::network {

NodeId Network::add_input(const std::string& name) {
  if (by_name_.count(name))
    throw std::invalid_argument("Network: duplicate name " + name);
  const NodeId id = num_nodes();
  nodes_.push_back(Node{name, NodeType::kInput, {}, cubes::Cover(0)});
  dead_.push_back(false);
  inputs_.push_back(id);
  by_name_.emplace(name, id);
  return id;
}

NodeId Network::add_logic(const std::string& name, std::vector<NodeId> fanins,
                          cubes::Cover cover) {
  if (by_name_.count(name))
    throw std::invalid_argument("Network: duplicate name " + name);
  if (cover.num_vars() != static_cast<int>(fanins.size()))
    throw std::invalid_argument("Network: cover arity != fanin count for " +
                                name);
  for (const NodeId f : fanins) check_id(f);
  const NodeId id = num_nodes();
  nodes_.push_back(Node{name, NodeType::kLogic, std::move(fanins), std::move(cover)});
  dead_.push_back(false);
  by_name_.emplace(name, id);
  return id;
}

NodeId Network::add_constant(const std::string& name, bool value) {
  return add_logic(name, {},
                   value ? cubes::Cover::universal(0) : cubes::Cover(0));
}

void Network::mark_output(NodeId id) {
  check_id(id);
  outputs_.push_back(id);
}

std::optional<NodeId> Network::find(const std::string& name) const {
  const auto it = by_name_.find(name);
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::vector<NodeId>> Network::fanouts() const {
  std::vector<std::vector<NodeId>> out(nodes_.size());
  for (NodeId id = 0; id < num_nodes(); ++id) {
    if (dead_[static_cast<std::size_t>(id)]) continue;
    for (const NodeId f : nodes_[static_cast<std::size_t>(id)].fanins)
      out[static_cast<std::size_t>(f)].push_back(id);
  }
  return out;
}

std::vector<NodeId> Network::topological_order() const {
  std::vector<int> state(nodes_.size(), 0);  // 0 unvisited, 1 on stack, 2 done
  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  // Iterative DFS to keep deep netlists off the call stack.
  std::vector<std::pair<NodeId, std::size_t>> stack;
  auto visit = [&](NodeId root) {
    if (state[static_cast<std::size_t>(root)] != 0) return;
    stack.emplace_back(root, 0);
    state[static_cast<std::size_t>(root)] = 1;
    while (!stack.empty()) {
      auto& [id, next] = stack.back();
      const auto& fi = nodes_[static_cast<std::size_t>(id)].fanins;
      if (next < fi.size()) {
        const NodeId child = fi[next++];
        if (state[static_cast<std::size_t>(child)] == 1)
          throw std::logic_error("Network: combinational cycle at " +
                                 nodes_[static_cast<std::size_t>(child)].name);
        if (state[static_cast<std::size_t>(child)] == 0) {
          state[static_cast<std::size_t>(child)] = 1;
          stack.emplace_back(child, 0);
        }
      } else {
        state[static_cast<std::size_t>(id)] = 2;
        order.push_back(id);
        stack.pop_back();
      }
    }
  };
  for (NodeId id = 0; id < num_nodes(); ++id)
    if (!dead_[static_cast<std::size_t>(id)]) visit(id);
  return order;
}

std::vector<int> Network::levels() const {
  std::vector<int> lvl(nodes_.size(), 0);
  for (const NodeId id : topological_order()) {
    int m = 0;
    const auto& n = nodes_[static_cast<std::size_t>(id)];
    for (const NodeId f : n.fanins)
      m = std::max(m, lvl[static_cast<std::size_t>(f)] + 1);
    lvl[static_cast<std::size_t>(id)] = n.type == NodeType::kInput ? 0 : m;
  }
  return lvl;
}

int Network::num_literals() const {
  int n = 0;
  for (NodeId id = 0; id < num_nodes(); ++id)
    if (!dead_[static_cast<std::size_t>(id)] &&
        nodes_[static_cast<std::size_t>(id)].type == NodeType::kLogic)
      n += nodes_[static_cast<std::size_t>(id)].cover.num_literals();
  return n;
}

int Network::num_logic_nodes() const {
  int n = 0;
  for (NodeId id = 0; id < num_nodes(); ++id)
    if (!dead_[static_cast<std::size_t>(id)] &&
        nodes_[static_cast<std::size_t>(id)].type == NodeType::kLogic)
      ++n;
  return n;
}

std::vector<bool> Network::simulate(const std::vector<bool>& input_values) const {
  if (input_values.size() != inputs_.size())
    throw std::invalid_argument("Network::simulate: input arity mismatch");
  std::vector<bool> value(nodes_.size(), false);
  for (std::size_t i = 0; i < inputs_.size(); ++i)
    value[static_cast<std::size_t>(inputs_[i])] = input_values[i];
  for (const NodeId id : topological_order()) {
    const auto& n = nodes_[static_cast<std::size_t>(id)];
    if (n.type == NodeType::kInput) continue;
    std::uint64_t minterm = 0;
    for (std::size_t k = 0; k < n.fanins.size(); ++k)
      if (value[static_cast<std::size_t>(n.fanins[k])]) minterm |= 1ull << k;
    value[static_cast<std::size_t>(id)] = n.cover.eval(minterm);
  }
  return value;
}

std::vector<std::uint64_t> Network::simulate64(
    const std::vector<std::uint64_t>& input_words) const {
  if (input_words.size() != inputs_.size())
    throw std::invalid_argument("Network::simulate64: input arity mismatch");
  std::vector<std::uint64_t> value(nodes_.size(), 0);
  for (std::size_t i = 0; i < inputs_.size(); ++i)
    value[static_cast<std::size_t>(inputs_[i])] = input_words[i];
  for (const NodeId id : topological_order()) {
    const auto& n = nodes_[static_cast<std::size_t>(id)];
    if (n.type == NodeType::kInput) continue;
    std::uint64_t acc = 0;
    for (const auto& cube : n.cover.cubes()) {
      std::uint64_t term = ~0ull;
      for (std::size_t k = 0; k < n.fanins.size(); ++k) {
        const auto code = cube.code(static_cast<int>(k));
        const std::uint64_t w = value[static_cast<std::size_t>(n.fanins[k])];
        if (code == cubes::Pcn::kPos) term &= w;
        else if (code == cubes::Pcn::kNeg) term &= ~w;
        else if (code == cubes::Pcn::kEmpty) term = 0;
      }
      acc |= term;
    }
    value[static_cast<std::size_t>(id)] = acc;
  }
  return value;
}

void Network::replace_fanin(NodeId id, NodeId old_fanin, NodeId new_fanin) {
  check_id(id);
  check_id(new_fanin);
  auto& fi = nodes_[static_cast<std::size_t>(id)].fanins;
  const auto it = std::find(fi.begin(), fi.end(), old_fanin);
  if (it == fi.end())
    throw std::invalid_argument("Network::replace_fanin: edge not found");
  *it = new_fanin;
}

void Network::set_function(NodeId id, std::vector<NodeId> fanins,
                           cubes::Cover cover) {
  check_id(id);
  auto& n = nodes_[static_cast<std::size_t>(id)];
  if (n.type != NodeType::kLogic)
    throw std::invalid_argument("Network::set_function: not a logic node");
  if (cover.num_vars() != static_cast<int>(fanins.size()))
    throw std::invalid_argument("Network::set_function: arity mismatch");
  for (const NodeId f : fanins) check_id(f);
  n.fanins = std::move(fanins);
  n.cover = std::move(cover);
}

int Network::sweep_dangling() {
  std::vector<bool> reach(nodes_.size(), false);
  std::vector<NodeId> stack(outputs_.begin(), outputs_.end());
  while (!stack.empty()) {
    const NodeId id = stack.back();
    stack.pop_back();
    if (reach[static_cast<std::size_t>(id)]) continue;
    reach[static_cast<std::size_t>(id)] = true;
    for (const NodeId f : nodes_[static_cast<std::size_t>(id)].fanins)
      stack.push_back(f);
  }
  int removed = 0;
  for (NodeId id = 0; id < num_nodes(); ++id) {
    const auto i = static_cast<std::size_t>(id);
    if (!reach[i] && !dead_[i] && nodes_[i].type == NodeType::kLogic) {
      dead_[i] = true;
      by_name_.erase(nodes_[i].name);
      ++removed;
    }
  }
  return removed;
}

void Network::validate() const {
  for (NodeId id = 0; id < num_nodes(); ++id) {
    const auto i = static_cast<std::size_t>(id);
    if (dead_[i]) continue;
    const auto& n = nodes_[i];
    if (n.type == NodeType::kLogic &&
        n.cover.num_vars() != static_cast<int>(n.fanins.size()))
      throw std::logic_error("Network: arity mismatch at " + n.name);
    for (const NodeId f : n.fanins) {
      if (f < 0 || f >= num_nodes())
        throw std::logic_error("Network: fanin out of range at " + n.name);
      if (dead_[static_cast<std::size_t>(f)])
        throw std::logic_error("Network: dead fanin referenced at " + n.name);
    }
  }
  for (const NodeId o : outputs_)
    if (o < 0 || o >= num_nodes() || dead_[static_cast<std::size_t>(o)])
      throw std::logic_error("Network: dead or invalid output");
  topological_order();  // throws on cycles
}

void Network::check_id(NodeId id) const {
  if (id < 0 || id >= num_nodes())
    throw std::invalid_argument("Network: node id out of range");
  if (dead_[static_cast<std::size_t>(id)])
    throw std::invalid_argument("Network: node is dead");
}

}  // namespace l2l::network
