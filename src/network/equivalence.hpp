#pragma once
// Combinational equivalence checking, both ways the course teaches it:
// canonical BDD comparison and SAT on a miter. Networks are matched by
// primary-input and primary-output *names*.

#include <optional>
#include <string>
#include <vector>

#include "network/network.hpp"

namespace l2l::network {

enum class EquivalenceMethod { kBdd, kSat };

struct EquivalenceResult {
  bool equivalent = false;
  /// When inequivalent: a distinguishing input assignment, indexed by the
  /// first network's inputs() order.
  std::optional<std::vector<bool>> counterexample;
  /// Which output differed (name), when inequivalent.
  std::string failing_output;
};

/// Check that `a` and `b` compute identical functions on every output.
/// Throws std::invalid_argument when the interfaces (input/output name
/// sets) do not match.
EquivalenceResult check_equivalence(const Network& a, const Network& b,
                                    EquivalenceMethod method);

}  // namespace l2l::network
