#include "gen/placement_gen.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>

#include "util/strings.hpp"

namespace l2l::gen {

void PlacementProblem::validate() const {
  std::vector<bool> used(static_cast<std::size_t>(num_cells), false);
  for (const auto& net : nets) {
    if (net.size() < 2) throw std::logic_error("placement: net with < 2 pins");
    for (const auto& p : net) {
      if (p.is_pad) {
        if (p.index < 0 || p.index >= static_cast<int>(pads.size()))
          throw std::logic_error("placement: pad index out of range");
      } else {
        if (p.index < 0 || p.index >= num_cells)
          throw std::logic_error("placement: cell index out of range");
        used[static_cast<std::size_t>(p.index)] = true;
      }
    }
  }
  for (int c = 0; c < num_cells; ++c)
    if (!used[static_cast<std::size_t>(c)])
      throw std::logic_error("placement: unconnected cell");
}

PlacementProblem generate_placement(const PlacementGenOptions& opt,
                                    util::Rng& rng) {
  PlacementProblem p;
  p.num_cells = opt.num_cells;
  p.width = opt.die_size;
  p.height = opt.die_size;

  // Pads evenly around the boundary.
  for (int k = 0; k < opt.num_pads; ++k) {
    const double t = static_cast<double>(k) / opt.num_pads * 4.0;
    Pad pad;
    if (t < 1.0) {
      pad.x = t * opt.die_size;
      pad.y = 0.0;
    } else if (t < 2.0) {
      pad.x = opt.die_size;
      pad.y = (t - 1.0) * opt.die_size;
    } else if (t < 3.0) {
      pad.x = (3.0 - t) * opt.die_size;
      pad.y = opt.die_size;
    } else {
      pad.x = 0.0;
      pad.y = (4.0 - t) * opt.die_size;
    }
    pad.name = util::format("p%d", k);
    p.pads.push_back(pad);
  }

  // Latent cell locations drive locality: cells laid out in a jittered
  // grid; nets connect latent-space neighbours.
  const int side = static_cast<int>(std::ceil(std::sqrt(opt.num_cells)));
  std::vector<double> lx(static_cast<std::size_t>(opt.num_cells));
  std::vector<double> ly(static_cast<std::size_t>(opt.num_cells));
  for (int c = 0; c < opt.num_cells; ++c) {
    lx[static_cast<std::size_t>(c)] =
        ((c % side) + rng.next_double()) / side * opt.die_size;
    ly[static_cast<std::size_t>(c)] =
        ((c / side) + rng.next_double()) / side * opt.die_size;
  }

  const int num_nets =
      std::max(1, static_cast<int>(std::lround(opt.nets_per_cell * opt.num_cells)));
  const double radius = opt.die_size / side * 2.5;  // neighbourhood radius

  auto nearby_cell = [&](int anchor) {
    // Rejection-sample a cell within `radius` of the anchor's latent spot.
    for (int attempt = 0; attempt < 64; ++attempt) {
      const int c = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(opt.num_cells)));
      const double dx = lx[static_cast<std::size_t>(c)] - lx[static_cast<std::size_t>(anchor)];
      const double dy = ly[static_cast<std::size_t>(c)] - ly[static_cast<std::size_t>(anchor)];
      if (c != anchor && dx * dx + dy * dy <= radius * radius) return c;
    }
    return static_cast<int>(rng.next_below(static_cast<std::uint64_t>(opt.num_cells)));
  };

  for (int n = 0; n < num_nets; ++n) {
    // Degree: 2 plus a geometric tail around the requested mean, capped so
    // small problems can still supply enough distinct pins.
    const int max_degree = std::min(12, opt.num_cells - 1);
    int degree = 2;
    const double p_more = 1.0 - 1.0 / std::max(1.0, opt.mean_net_degree - 1.0);
    while (degree < max_degree && rng.next_double() < p_more) ++degree;

    const bool long_range = rng.next_double() < opt.long_range_fraction;
    const bool pad_net = rng.next_double() < opt.pad_net_fraction;
    const int anchor = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(opt.num_cells)));

    std::set<std::pair<bool, int>> pins;
    pins.insert({false, anchor});
    if (pad_net)
      pins.insert({true, static_cast<int>(rng.next_below(static_cast<std::uint64_t>(opt.num_pads)))});
    // The anchor's neighbourhood may hold fewer distinct cells than the
    // requested degree (small problems): widen to uniform sampling after a
    // few tries, and accept a smaller net rather than spin forever.
    for (int attempt = 0; static_cast<int>(pins.size()) < degree && attempt < 200;
         ++attempt) {
      const int c = (long_range || attempt >= 32)
                        ? static_cast<int>(rng.next_below(static_cast<std::uint64_t>(opt.num_cells)))
                        : nearby_cell(anchor);
      pins.insert({false, c});
    }
    if (pins.size() < 2) continue;  // degenerate; skip (cells reconnect below)
    std::vector<Pin> net;
    for (const auto& [is_pad, idx] : pins) net.push_back({is_pad, idx});
    p.nets.push_back(std::move(net));
  }

  // Guarantee every cell is connected: chain orphans to a neighbour.
  std::vector<bool> used(static_cast<std::size_t>(opt.num_cells), false);
  for (const auto& net : p.nets)
    for (const auto& pin : net)
      if (!pin.is_pad) used[static_cast<std::size_t>(pin.index)] = true;
  for (int c = 0; c < opt.num_cells; ++c) {
    if (used[static_cast<std::size_t>(c)]) continue;
    int other = nearby_cell(c);
    while (other == c)
      other = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(opt.num_cells)));
    p.nets.push_back({{false, c}, {false, other}});
  }

  p.validate();
  return p;
}

}  // namespace l2l::gen
