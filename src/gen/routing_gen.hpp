#pragma once
// Synthetic maze-routing benchmarks: 2-layer grids with obstacles and
// multi-terminal nets (the MOOC's Project 4 inputs were pin/obstacle maps
// derived from reference placements; we generate equivalent maps).

#include <vector>

#include "util/rng.hpp"

namespace l2l::gen {

struct GridPoint {
  int x = 0, y = 0, layer = 0;
  bool operator==(const GridPoint&) const = default;
  bool operator<(const GridPoint& o) const {
    if (layer != o.layer) return layer < o.layer;
    if (y != o.y) return y < o.y;
    return x < o.x;
  }
};

struct RoutingNet {
  int id = 0;
  std::vector<GridPoint> pins;  ///< >= 2 terminals
};

struct RoutingProblem {
  int width = 0, height = 0;
  int num_layers = 2;
  /// Blocked cells per layer (true = obstacle).
  std::vector<std::vector<bool>> blocked;  // [layer][y * width + x]
  std::vector<RoutingNet> nets;

  bool is_blocked(const GridPoint& p) const {
    return blocked[static_cast<std::size_t>(p.layer)]
                  [static_cast<std::size_t>(p.y) * static_cast<std::size_t>(width) +
                   static_cast<std::size_t>(p.x)];
  }
  bool in_bounds(const GridPoint& p) const {
    return p.x >= 0 && p.x < width && p.y >= 0 && p.y < height &&
           p.layer >= 0 && p.layer < num_layers;
  }
};

struct RoutingGenOptions {
  int width = 64;
  int height = 64;
  int num_nets = 24;
  double obstacle_fraction = 0.08;  ///< random blocked cells per layer
  int max_pins_per_net = 2;         ///< 2 = pin pairs; >2 = multi-terminal
};

/// Deterministic random routing problem. Pins are never placed on
/// obstacles and pin locations are distinct across nets (layer 0).
RoutingProblem generate_routing(const RoutingGenOptions& opt, util::Rng& rng);

}  // namespace l2l::gen
