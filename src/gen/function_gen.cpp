#include "gen/function_gen.hpp"

#include "util/strings.hpp"

namespace l2l::gen {

using network::Network;
using network::NodeId;

cubes::Cover random_cover(int num_vars, int num_cubes, util::Rng& rng) {
  cubes::Cover f(num_vars);
  for (int i = 0; i < num_cubes; ++i) {
    cubes::Cube c(num_vars);
    for (int v = 0; v < num_vars; ++v) {
      switch (rng.next_below(3)) {
        case 0: c.set_code(v, cubes::Pcn::kNeg); break;
        case 1: c.set_code(v, cubes::Pcn::kPos); break;
        default: break;
      }
    }
    f.add(std::move(c));
  }
  return f;
}

Network random_network(const NetworkGenOptions& opt, util::Rng& rng) {
  Network net("rand");
  std::vector<NodeId> pool;
  for (int i = 0; i < opt.num_inputs; ++i)
    pool.push_back(net.add_input(util::format("i%d", i)));
  for (int k = 0; k < opt.num_nodes; ++k) {
    const int arity =
        2 + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(opt.max_arity - 1)));
    std::vector<NodeId> fanins;
    std::vector<bool> seen(pool.size(), false);
    while (static_cast<int>(fanins.size()) < arity) {
      const auto c = rng.next_below(pool.size());
      if (seen[c]) continue;
      seen[c] = true;
      fanins.push_back(pool[c]);
      if (fanins.size() >= pool.size()) break;
    }
    auto cover = random_cover(
        static_cast<int>(fanins.size()),
        1 + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(opt.max_cubes))),
        rng);
    pool.push_back(
        net.add_logic(util::format("n%d", k), std::move(fanins), std::move(cover)));
  }
  for (int o = 0; o < opt.num_outputs; ++o)
    net.mark_output(pool[pool.size() - 1 - static_cast<std::size_t>(o)]);
  return net;
}

Network adder_network(int bits) {
  Network net(util::format("adder%d", bits));
  std::vector<NodeId> a, b;
  for (int i = 0; i < bits; ++i) a.push_back(net.add_input(util::format("a%d", i)));
  for (int i = 0; i < bits; ++i) b.push_back(net.add_input(util::format("b%d", i)));
  NodeId carry = net.add_input("cin");
  for (int i = 0; i < bits; ++i) {
    const auto sum = net.add_logic(
        util::format("s%d", i), {a[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)], carry},
        cubes::Cover::parse(3, "100\n010\n001\n111\n"));
    const auto cout = net.add_logic(
        util::format("c%d", i), {a[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)], carry},
        cubes::Cover::parse(3, "11-\n1-1\n-11\n"));
    net.mark_output(sum);
    carry = cout;
  }
  net.mark_output(carry);
  return net;
}

Network parity_network(int bits) {
  Network net(util::format("parity%d", bits));
  NodeId acc = net.add_input("x0");
  for (int i = 1; i < bits; ++i) {
    const auto xi = net.add_input(util::format("x%d", i));
    acc = net.add_logic(util::format("p%d", i), {acc, xi},
                        cubes::Cover::parse(2, "10\n01\n"));
  }
  net.mark_output(acc);
  return net;
}

Network mux_network(int sel_bits) {
  Network net(util::format("mux%d", sel_bits));
  std::vector<NodeId> sel;
  for (int i = 0; i < sel_bits; ++i)
    sel.push_back(net.add_input(util::format("s%d", i)));
  const int ways = 1 << sel_bits;
  std::vector<NodeId> data;
  for (int i = 0; i < ways; ++i)
    data.push_back(net.add_input(util::format("d%d", i)));

  // One AND term per data input gated by the select decode, OR-ed together.
  std::vector<NodeId> fanins = sel;
  fanins.insert(fanins.end(), data.begin(), data.end());
  cubes::Cover cover(sel_bits + ways);
  for (int w = 0; w < ways; ++w) {
    cubes::Cube c(sel_bits + ways);
    for (int s = 0; s < sel_bits; ++s)
      c.set_code(s, ((w >> s) & 1) ? cubes::Pcn::kPos : cubes::Pcn::kNeg);
    c.set_code(sel_bits + w, cubes::Pcn::kPos);
    cover.add(std::move(c));
  }
  const auto y = net.add_logic("y", std::move(fanins), std::move(cover));
  net.mark_output(y);
  return net;
}

}  // namespace l2l::gen
