#include "gen/routing_gen.hpp"

#include <set>
#include <stdexcept>

namespace l2l::gen {

RoutingProblem generate_routing(const RoutingGenOptions& opt, util::Rng& rng) {
  RoutingProblem p;
  p.width = opt.width;
  p.height = opt.height;
  p.num_layers = 2;
  p.blocked.assign(2, std::vector<bool>(
                          static_cast<std::size_t>(opt.width) *
                              static_cast<std::size_t>(opt.height),
                          false));

  // Random obstacles, independent per layer.
  for (int layer = 0; layer < 2; ++layer) {
    const auto cells = static_cast<std::uint64_t>(opt.width) *
                       static_cast<std::uint64_t>(opt.height);
    const auto count = static_cast<std::uint64_t>(opt.obstacle_fraction *
                                                  static_cast<double>(cells));
    for (std::uint64_t k = 0; k < count; ++k)
      p.blocked[static_cast<std::size_t>(layer)][static_cast<std::size_t>(
          rng.next_below(cells))] = true;
  }

  std::set<std::pair<int, int>> taken;  // pin xy uniqueness (layer 0)
  auto free_pin = [&]() {
    for (int attempt = 0; attempt < 10000; ++attempt) {
      const int x = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(opt.width)));
      const int y = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(opt.height)));
      if (taken.count({x, y})) continue;
      const GridPoint g{x, y, 0};
      if (p.is_blocked(g)) continue;
      taken.insert({x, y});
      return g;
    }
    throw std::logic_error("generate_routing: could not place pins");
  };

  for (int n = 0; n < opt.num_nets; ++n) {
    RoutingNet net;
    net.id = n;
    const int pins =
        2 + (opt.max_pins_per_net > 2
                 ? static_cast<int>(rng.next_below(
                       static_cast<std::uint64_t>(opt.max_pins_per_net - 1)))
                 : 0);
    for (int k = 0; k < pins; ++k) net.pins.push_back(free_pin());
    p.nets.push_back(std::move(net));
  }
  return p;
}

}  // namespace l2l::gen
