#pragma once
// Random Boolean functions and logic networks for benchmarking the
// synthesis flow (espresso, multi-level optimization, mapping).

#include "cubes/cover.hpp"
#include "network/network.hpp"
#include "util/rng.hpp"

namespace l2l::gen {

/// Random cube cover: k cubes over n variables, each position taking
/// {neg, pos, don't-care} uniformly.
cubes::Cover random_cover(int num_vars, int num_cubes, util::Rng& rng);

struct NetworkGenOptions {
  int num_inputs = 8;
  int num_nodes = 30;
  int num_outputs = 4;
  int max_arity = 4;
  int max_cubes = 4;
};

/// Random layered logic network (DAG). Deterministic per seed.
network::Network random_network(const NetworkGenOptions& opt, util::Rng& rng);

/// The n-bit ripple-carry adder as a logic network: 2n+1 inputs
/// (a0..an-1, b0..bn-1, cin), n+1 outputs (s0..sn-1, cout). A classic
/// structured benchmark for the flow.
network::Network adder_network(int bits);

/// n-bit odd-parity tree (XOR chain) -- stresses BDD/espresso worst cases.
network::Network parity_network(int bits);

/// 2^sel -to-1 multiplexer: sel select inputs, 2^sel data inputs.
network::Network mux_network(int sel_bits);

}  // namespace l2l::gen
