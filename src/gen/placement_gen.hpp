#pragma once
// Synthetic standard-cell placement benchmarks.
//
// The MOOC's placement project used MCNC netlists [14]; those are not
// bundled here, so we generate seeded synthetic netlists at the same scale
// with comparable structure: cells with geometric locality (most nets are
// short-range, a Rent-like tail is long-range) and I/O pads on the die
// boundary. See DESIGN.md "Substitutions".

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace l2l::gen {

/// A pin is either a movable cell or a fixed pad.
struct Pin {
  bool is_pad = false;
  int index = 0;  ///< cell index or pad index
};

struct Pad {
  double x = 0.0, y = 0.0;
  std::string name;
};

struct PlacementProblem {
  int num_cells = 0;
  std::vector<Pad> pads;
  std::vector<std::vector<Pin>> nets;
  double width = 0.0, height = 0.0;  ///< die dimensions

  /// Structural sanity: every net >= 2 pins, indices in range, every cell
  /// appears in at least one net. Throws std::logic_error otherwise.
  void validate() const;
};

struct PlacementGenOptions {
  int num_cells = 400;
  int num_pads = 32;
  double nets_per_cell = 1.2;       ///< nets = round(nets_per_cell * cells)
  double mean_net_degree = 3.0;     ///< 2 + geometric tail
  double long_range_fraction = 0.1; ///< nets ignoring locality
  double pad_net_fraction = 0.15;   ///< nets anchored at a pad
  double die_size = 100.0;
};

/// Deterministic synthetic netlist (same seed -> same problem).
PlacementProblem generate_placement(const PlacementGenOptions& opt,
                                    util::Rng& rng);

}  // namespace l2l::gen
