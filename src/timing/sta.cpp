#include "timing/sta.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace l2l::timing {

using network::Network;
using network::NodeId;
using network::NodeType;

std::vector<double> unit_delays(const Network& net, double unit) {
  std::vector<double> d(static_cast<std::size_t>(net.num_nodes()), 0.0);
  for (NodeId id = 0; id < net.num_nodes(); ++id)
    if (!net.is_dead(id) && net.node(id).type == NodeType::kLogic)
      d[static_cast<std::size_t>(id)] = unit;
  return d;
}

std::vector<double> cell_delays(const Network& net, const techmap::Library& lib,
                                double default_delay) {
  std::vector<double> d(static_cast<std::size_t>(net.num_nodes()),
                        default_delay);
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    if (net.is_dead(id) || net.node(id).type != NodeType::kLogic) {
      d[static_cast<std::size_t>(id)] = 0.0;
      continue;
    }
    const auto& name = net.node(id).name;
    const auto underscore = name.find('_');
    if (underscore == std::string::npos) continue;
    if (const auto* cell = lib.find(name.substr(underscore + 1)))
      d[static_cast<std::size_t>(id)] = cell->delay;
  }
  return d;
}

TimingResult analyze(const Network& net, const std::vector<double>& node_delay,
                     double required_time) {
  if (node_delay.size() != static_cast<std::size_t>(net.num_nodes()))
    throw std::invalid_argument("analyze: delay vector size mismatch");

  TimingResult res;
  const auto n = static_cast<std::size_t>(net.num_nodes());
  res.arrival.assign(n, 0.0);
  res.required.assign(n, std::numeric_limits<double>::infinity());
  res.slack.assign(n, 0.0);

  const auto order = net.topological_order();

  // Forward: arrival = max fanin arrival + own delay.
  for (const NodeId id : order) {
    const auto& node = net.node(id);
    double in = 0.0;
    for (const NodeId f : node.fanins)
      in = std::max(in, res.arrival[static_cast<std::size_t>(f)]);
    res.arrival[static_cast<std::size_t>(id)] =
        in + node_delay[static_cast<std::size_t>(id)];
  }
  for (const NodeId o : net.outputs())
    res.critical_delay =
        std::max(res.critical_delay, res.arrival[static_cast<std::size_t>(o)]);

  // Backward: required = min over fanouts (required(fo) - delay(fo)).
  const double rt = required_time < 0 ? res.critical_delay : required_time;
  for (const NodeId o : net.outputs())
    res.required[static_cast<std::size_t>(o)] = rt;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId id = *it;
    const auto& node = net.node(id);
    const double own_req = res.required[static_cast<std::size_t>(id)];
    for (const NodeId f : node.fanins) {
      auto& fr = res.required[static_cast<std::size_t>(f)];
      fr = std::min(fr, own_req - node_delay[static_cast<std::size_t>(id)]);
    }
  }
  // Unconstrained nodes (no path to an output) get zero slack vs self.
  res.worst_slack = std::numeric_limits<double>::infinity();
  for (const NodeId id : order) {
    auto& req = res.required[static_cast<std::size_t>(id)];
    if (req == std::numeric_limits<double>::infinity())
      req = res.arrival[static_cast<std::size_t>(id)];
    res.slack[static_cast<std::size_t>(id)] =
        req - res.arrival[static_cast<std::size_t>(id)];
    res.worst_slack =
        std::min(res.worst_slack, res.slack[static_cast<std::size_t>(id)]);
  }

  // Critical path: walk back from the worst output along worst-arrival
  // fanins.
  NodeId worst = network::kNoNode;
  for (const NodeId o : net.outputs())
    if (worst == network::kNoNode ||
        res.arrival[static_cast<std::size_t>(o)] >
            res.arrival[static_cast<std::size_t>(worst)])
      worst = o;
  std::vector<NodeId> path;
  while (worst != network::kNoNode) {
    path.push_back(worst);
    const auto& node = net.node(worst);
    NodeId next = network::kNoNode;
    for (const NodeId f : node.fanins)
      if (next == network::kNoNode ||
          res.arrival[static_cast<std::size_t>(f)] >
              res.arrival[static_cast<std::size_t>(next)])
        next = f;
    worst = next;
  }
  std::reverse(path.begin(), path.end());
  res.critical_path = std::move(path);
  return res;
}

}  // namespace l2l::timing
