#pragma once
// Logic-level static timing analysis (Week 8: "Timing"): forward arrival
// times, backward required times, slack, and critical-path extraction on
// a combinational logic network.

#include <vector>

#include "network/network.hpp"
#include "techmap/library.hpp"

namespace l2l::timing {

struct TimingResult {
  std::vector<double> arrival;   ///< per node id
  std::vector<double> required;  ///< per node id
  std::vector<double> slack;     ///< per node id (required - arrival)
  double critical_delay = 0.0;   ///< max arrival over outputs
  /// One critical path, inputs-to-output order (node ids).
  std::vector<network::NodeId> critical_path;
  double worst_slack = 0.0;
};

/// Unit delay model: every logic node contributes `unit` delay.
std::vector<double> unit_delays(const network::Network& net, double unit = 1.0);

/// Library delay model for mapped netlists: node named "g<i>_<CELL>" gets
/// that cell's delay; other logic nodes get `default_delay`.
std::vector<double> cell_delays(const network::Network& net,
                                const techmap::Library& lib,
                                double default_delay = 0.0);

/// Run STA. `node_delay` is indexed by node id; inputs arrive at t=0.
/// `required_time` < 0 means "use the critical delay" (worst slack 0).
TimingResult analyze(const network::Network& net,
                     const std::vector<double>& node_delay,
                     double required_time = -1.0);

}  // namespace l2l::timing
