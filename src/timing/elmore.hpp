#pragma once
// Elmore wire-delay analysis (the second half of Week 8): first-moment
// delay of an RC tree, plus construction of RC trees from routed nets.

#include <vector>

#include "route/router.hpp"

namespace l2l::timing {

/// An RC tree. Node 0 is the root (driver); each other node has a parent,
/// the resistance of the edge from its parent, and a node capacitance.
struct RcTree {
  struct RcNode {
    int parent = -1;
    double resistance = 0.0;  ///< edge from parent (root: 0)
    double capacitance = 0.0;
  };
  std::vector<RcNode> nodes;

  /// Structural check (single root at 0, parents precede children).
  void validate() const;
};

/// Elmore delay from the root to every node:
///   delay(i) = sum over edges e on the root->i path of R_e * Cdown(e),
/// where Cdown(e) is the total capacitance in the subtree below e.
std::vector<double> elmore_delays(const RcTree& tree);

/// Total downstream capacitance seen at the root (the driver load).
double total_capacitance(const RcTree& tree);

/// Wire parasitics per grid unit for RC extraction from routed nets.
struct WireParasitics {
  double r_per_unit = 1.0;
  double c_per_unit = 2.0;
  double via_r = 4.0;
  double via_c = 1.0;
  double sink_c = 5.0;  ///< extra load at each sink pin
};

/// Build an RC tree from a routed net's cells. `source` must be one of the
/// net's cells; `sinks` are the remaining pins (each gets sink_c added).
/// The tree follows grid adjacency (BFS from the source).
RcTree rc_tree_from_route(const route::NetRoute& net,
                          const route::GridPoint& source,
                          const std::vector<route::GridPoint>& sinks,
                          const WireParasitics& par = {});

/// Elmore delay from source to each sink of a routed net.
std::vector<double> net_sink_delays(const route::NetRoute& net,
                                    const route::GridPoint& source,
                                    const std::vector<route::GridPoint>& sinks,
                                    const WireParasitics& par = {});

}  // namespace l2l::timing
