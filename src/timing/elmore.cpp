#include "timing/elmore.hpp"

#include <map>
#include <queue>
#include <stdexcept>

namespace l2l::timing {

void RcTree::validate() const {
  if (nodes.empty()) throw std::logic_error("RcTree: empty");
  if (nodes[0].parent != -1) throw std::logic_error("RcTree: bad root");
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    if (nodes[i].parent < 0 || static_cast<std::size_t>(nodes[i].parent) >= i)
      throw std::logic_error("RcTree: parents must precede children");
  }
}

std::vector<double> elmore_delays(const RcTree& tree) {
  tree.validate();
  const std::size_t n = tree.nodes.size();
  // Downstream capacitance per node: children-first accumulation.
  std::vector<double> cdown(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) cdown[i] = tree.nodes[i].capacitance;
  for (std::size_t i = n; i-- > 1;)
    cdown[static_cast<std::size_t>(tree.nodes[i].parent)] += cdown[i];
  // delay(i) = delay(parent) + R_i * cdown(i).
  std::vector<double> delay(n, 0.0);
  for (std::size_t i = 1; i < n; ++i)
    delay[i] = delay[static_cast<std::size_t>(tree.nodes[i].parent)] +
               tree.nodes[i].resistance * cdown[i];
  return delay;
}

double total_capacitance(const RcTree& tree) {
  double c = 0.0;
  for (const auto& n : tree.nodes) c += n.capacitance;
  return c;
}

RcTree rc_tree_from_route(const route::NetRoute& net,
                          const route::GridPoint& source,
                          const std::vector<route::GridPoint>& sinks,
                          const WireParasitics& par) {
  std::map<route::GridPoint, int> index;  // grid cell -> tree node
  RcTree tree;

  std::map<route::GridPoint, double> extra_cap;
  for (const auto& s : sinks) extra_cap[s] += par.sink_c;

  // BFS from the source over the net's cells.
  std::map<route::GridPoint, bool> in_net;
  for (const auto& c : net.cells) in_net[c] = true;
  if (!in_net.count(source))
    throw std::invalid_argument("rc_tree_from_route: source not on net");

  auto add_node = [&](const route::GridPoint& g, int parent, bool via) {
    RcTree::RcNode n;
    n.parent = parent;
    n.resistance = parent < 0 ? 0.0 : (via ? par.via_r : par.r_per_unit);
    n.capacitance = parent < 0 ? 0.0 : (via ? par.via_c : par.c_per_unit);
    if (const auto it = extra_cap.find(g); it != extra_cap.end())
      n.capacitance += it->second;
    tree.nodes.push_back(n);
    index[g] = static_cast<int>(tree.nodes.size()) - 1;
    return index[g];
  };

  std::queue<route::GridPoint> frontier;
  add_node(source, -1, false);
  frontier.push(source);
  while (!frontier.empty()) {
    const auto here = frontier.front();
    frontier.pop();
    const int here_idx = index[here];
    const route::GridPoint nbrs[6] = {
        {here.x + 1, here.y, here.layer}, {here.x - 1, here.y, here.layer},
        {here.x, here.y + 1, here.layer}, {here.x, here.y - 1, here.layer},
        {here.x, here.y, here.layer + 1}, {here.x, here.y, here.layer - 1}};
    for (int k = 0; k < 6; ++k) {
      const auto& nb = nbrs[k];
      if (!in_net.count(nb) || index.count(nb)) continue;
      add_node(nb, here_idx, /*via=*/k >= 4);
      frontier.push(nb);
    }
  }
  if (index.size() != in_net.size())
    throw std::invalid_argument("rc_tree_from_route: net is not connected");
  for (const auto& s : sinks)
    if (!index.count(s))
      throw std::invalid_argument("rc_tree_from_route: sink not on net");
  return tree;
}

std::vector<double> net_sink_delays(const route::NetRoute& net,
                                    const route::GridPoint& source,
                                    const std::vector<route::GridPoint>& sinks,
                                    const WireParasitics& par) {
  const auto tree = rc_tree_from_route(net, source, sinks, par);
  const auto delays = elmore_delays(tree);
  // Recover sink indices by rebuilding the BFS order mapping: rerun the
  // same deterministic construction.
  std::map<route::GridPoint, int> index;
  {
    std::map<route::GridPoint, bool> in_net;
    for (const auto& c : net.cells) in_net[c] = true;
    std::queue<route::GridPoint> frontier;
    int counter = 0;
    index[source] = counter++;
    frontier.push(source);
    while (!frontier.empty()) {
      const auto here = frontier.front();
      frontier.pop();
      const route::GridPoint nbrs[6] = {
          {here.x + 1, here.y, here.layer}, {here.x - 1, here.y, here.layer},
          {here.x, here.y + 1, here.layer}, {here.x, here.y - 1, here.layer},
          {here.x, here.y, here.layer + 1}, {here.x, here.y, here.layer - 1}};
      for (const auto& nb : nbrs) {
        if (!in_net.count(nb) || index.count(nb)) continue;
        index[nb] = counter++;
        frontier.push(nb);
      }
    }
  }
  std::vector<double> out;
  out.reserve(sinks.size());
  for (const auto& s : sinks)
    out.push_back(delays[static_cast<std::size_t>(index.at(s))]);
  return out;
}

}  // namespace l2l::timing
