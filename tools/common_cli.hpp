#pragma once
// The shared flag pack for the tools/* portal mains. Every portal
// accepts the same cross-cutting flags; before util::ArgParser existed
// each main hand-rolled the same parsing loop. Registering the pack:
//
//   --lint            run the input rule pack before the engine
//   --sema            also run the semantic analyzer (l2l::sema) on the
//                     input; error-severity findings gate like lint's
//   --metrics FILE    deterministic metrics export on every exit path
//   --trace FILE      Chrome trace export on every exit path
//   --cache           force the result cache on (overrides L2L_CACHE=0)
//   --no-cache        disable the result cache for this run
//   --cache-dir DIR   persistent cache tier (same as L2L_CACHE_DIR)
//
// Engine portals whose request inherits api::RequestBase additionally
// register the shared request flags (add_request_flags):
//
//   --time-limit-ms N wall-clock budget; >= 0 disables the result cache
//
// Tool-specific flags (deterministic budgets, heuristics) stay in each
// main -- their units differ per engine.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "api/base.hpp"
#include "cache/cache.hpp"
#include "obs/trace.hpp"
#include "util/arg_parser.hpp"

namespace l2l::tools {

struct CommonFlags {
  bool lint = false;
  bool sema = false;  ///< semantic analysis (cycles, stuck-ats, ...)
  bool cache_on = false;
  bool no_cache = false;
  std::string cache_dir;
};

inline void add_common_flags(util::ArgParser& parser, CommonFlags& flags,
                             obs::ExportOnExit& obs_export) {
  parser.flag("--lint", &flags.lint, "run the input rule pack first");
  parser.flag("--sema", &flags.sema,
              "run the semantic analyzer on the input first");
  parser.value("--metrics", &obs_export.metrics_path,
               "write deterministic metrics to FILE");
  parser.value("--trace", &obs_export.trace_path,
               "write a Chrome trace to FILE");
  parser.flag("--cache", &flags.cache_on,
              "force the result cache on (overrides L2L_CACHE=0)");
  parser.flag("--no-cache", &flags.no_cache,
              "disable the result cache for this run");
  parser.value("--cache-dir", &flags.cache_dir,
               "persistent result-cache directory (same as L2L_CACHE_DIR)");
}

/// The shared api::RequestBase flags, registered once here instead of
/// copy-pasted into every engine portal. Pass the request itself (it
/// inherits RequestBase); the parser writes straight into the base
/// fields, so there is nothing to copy after parse().
inline void add_request_flags(util::ArgParser& parser, api::RequestBase& req) {
  parser.int64_value("--time-limit-ms", &req.time_limit_ms,
                     "wall-clock budget (disables the result cache)");
}

/// Apply the cache flags after parse(). --no-cache wins over --cache.
inline void apply_cache_flags(const CommonFlags& flags) {
  if (flags.cache_on) cache::set_enabled(true);
  if (flags.no_cache) cache::set_enabled(false);
  if (!flags.cache_dir.empty())
    cache::Cache::global().set_disk_dir(flags.cache_dir);
}

/// Input convention shared by every portal: the first positional names a
/// file, no positional means stdin. False = unreadable file, after
/// printing the canonical "cannot open X" line to stderr (caller exits
/// kExitUsage).
inline bool read_input_text(const util::ArgParser& parser, std::string& text) {
  std::ostringstream ss;
  if (!parser.positionals().empty()) {
    const auto& path = parser.positionals().front();
    std::ifstream in(path);
    if (!in) {
      std::cerr << "cannot open " << path << "\n";
      return false;
    }
    ss << in.rdbuf();
  } else {
    ss << std::cin.rdbuf();
  }
  text = ss.str();
  return true;
}

}  // namespace l2l::tools
