#!/usr/bin/env sh
# Run every perf bench and record machine-readable results as
# BENCH_<name>.json (google-benchmark JSON, one file per binary), so the
# bench trajectory can be tracked across commits. Usage:
#   tools/run_benches.sh [--quick] [build-dir] [output-dir]
# Thread-scaling benches honour L2L_THREADS internally (they sweep 1/2/4/8
# regardless of the ambient setting).
#
# --quick caps per-case measurement time (0.05 s min-time instead of the
# google-benchmark 0.5 s default) so a full sweep fits a CI smoke job;
# fixed-Iterations cases are unaffected. The committed BENCH_*.json
# trajectory is recorded in quick mode so CI and local runs compare
# like-for-like (see EXPERIMENTS.md "Raw-speed trajectory").
#
# Every bench runs even if an earlier one fails; the script exits non-zero
# if ANY bench did, so CI cannot green-wash a crashing binary.
set -u

quick=""
if [ "${1:-}" = "--quick" ]; then
  quick="--benchmark_min_time=0.05"
  shift
fi

build_dir="${1:-build}"
out_dir="${2:-.}"
mkdir -p "${out_dir}" || exit 1

if [ ! -d "${build_dir}/bench" ]; then
  echo "error: ${build_dir}/bench not found (build the project first)" >&2
  exit 1
fi

failed=""
for bench in "${build_dir}"/bench/perf_*; do
  [ -x "${bench}" ] || continue
  name="$(basename "${bench}")"
  out="${out_dir}/BENCH_${name#perf_}.json"
  echo "== ${name} -> ${out}"
  # shellcheck disable=SC2086
  if ! "${bench}" ${quick} --benchmark_format=json --benchmark_out="${out}" \
                  --benchmark_out_format=json; then
    echo "error: ${name} exited $?" >&2
    failed="${failed} ${name}"
  fi
done

if [ -n "${failed}" ]; then
  echo "error: failing benches:${failed}" >&2
  exit 1
fi
