// espresso_lite: two-level minimizer front-end (the Espresso [9,10] portal
// workalike). Reads a PLA from a file argument or stdin, minimizes every
// output (heuristic by default, exact Quine-McCluskey with --exact), and
// writes the minimized PLA to stdout.
//
// Flags: --exact, --stats, --single-pass (ablation), --lint (run the
// L2L-Pxxx rule pack first; findings print as '# lint:' lines on stderr
// and lint errors exit 3 before minimization), --metrics FILE /
// --trace FILE (observability export).
//
// Exit codes: 0 ok, 2 usage/IO, 3 malformed PLA, 5 internal error.

#include <fstream>
#include <iostream>
#include <sstream>

#include "espresso/minimize.hpp"
#include "espresso/pla.hpp"
#include "espresso/qm.hpp"
#include "lint/lint.hpp"
#include "obs/trace.hpp"
#include "util/status.hpp"

int main(int argc, char** argv) try {
  l2l::obs::ExportOnExit obs_export;
  bool exact = false, show_stats = false, single_pass = false, lint = false;
  std::string path;
  for (int k = 1; k < argc; ++k) {
    const std::string arg = argv[k];
    if (arg == "--lint")
      lint = true;
    else if (arg == "--exact")
      exact = true;
    else if (arg == "--stats")
      show_stats = true;
    else if (arg == "--single-pass")
      single_pass = true;
    else if (arg == "--metrics" || arg == "--trace") {
      if (k + 1 >= argc) {
        std::cerr << "error: " << arg << " needs a value\n";
        return l2l::util::kExitUsage;
      }
      (arg == "--metrics" ? obs_export.metrics_path
                          : obs_export.trace_path) = argv[++k];
    } else
      path = arg;
  }

  std::string text;
  if (!path.empty()) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "cannot open " << path << "\n";
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    text = ss.str();
  } else {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    text = ss.str();
  }

  if (lint) {
    const auto findings = l2l::lint::lint_pla(text);
    bool fatal = false;
    for (const auto& f : findings) {
      std::cerr << "# lint: " << f.to_string() << "\n";
      fatal = fatal || f.severity == l2l::util::Severity::kError;
    }
    if (fatal) {
      std::cerr << "error: "
                << l2l::util::Status::parse_error("lint found errors")
                       .to_string()
                << "\n";
      return l2l::util::kExitParse;
    }
  }

  l2l::espresso::Pla pla;
  try {
    pla = l2l::espresso::parse_pla(text);
  } catch (const std::exception& e) {
    std::cerr << "error: "
              << l2l::util::Status::parse_error(e.what()).to_string() << "\n";
    return l2l::util::kExitParse;
  }
  {
    for (auto& out : pla.outputs) {
      const int before_cubes = out.on.size();
      const int before_lits = out.on.num_literals();
      if (exact) {
        out.on = l2l::espresso::exact_minimize(out.on, out.dc, nullptr);
      } else {
        l2l::espresso::MinimizeOptions mopt;
        mopt.single_pass = single_pass;
        out.on = l2l::espresso::minimize(out.on, out.dc, mopt, nullptr);
      }
      out.dc = l2l::cubes::Cover(pla.num_inputs);  // consumed by minimization
      if (show_stats)
        std::cerr << "# " << out.name << ": " << before_cubes << " cubes/"
                  << before_lits << " lits -> " << out.on.size() << "/"
                  << out.on.num_literals() << "\n";
    }
    std::cout << l2l::espresso::write_pla(pla);
    return l2l::util::kExitOk;
  }
} catch (const std::exception& e) {
  std::cerr << "error: " << l2l::util::Status::internal(e.what()).to_string()
            << "\n";
  return l2l::util::kExitInternal;
} catch (...) {
  std::cerr << "error: internal-error: unknown\n";
  return l2l::util::kExitInternal;
}
