// espresso_lite: two-level minimizer front-end (the Espresso [9,10] portal
// workalike). Reads a PLA from a file argument or stdin, minimizes every
// output (heuristic by default, exact Quine-McCluskey with --exact), and
// writes the minimized PLA to stdout. The minimization goes through
// api::minimize_pla, so identical PLAs replay from the result cache.
//
// Flags: --exact, --stats, --single-pass (ablation), --lint (run the
// L2L-Pxxx rule pack first; findings print as '# lint:' lines on stderr
// and lint errors exit 3 before minimization), plus the shared pack from
// tools/common_cli.hpp (--metrics/--trace/--cache/--no-cache/--cache-dir).
//
// Exit codes: 0 ok, 2 usage/IO, 3 malformed PLA, 5 internal error.

#include <iostream>
#include <string>

#include "api/espresso.hpp"
#include "common_cli.hpp"
#include "lint/lint.hpp"
#include "obs/trace.hpp"
#include "sema/sema.hpp"
#include "util/arg_parser.hpp"
#include "util/status.hpp"

int main(int argc, char** argv) try {
  l2l::obs::ExportOnExit obs_export;
  l2l::api::EspressoRequest req;
  l2l::tools::CommonFlags common;

  l2l::util::ArgParser parser;
  l2l::tools::add_common_flags(parser, common, obs_export);
  parser.flag("--exact", &req.exact, "exact Quine-McCluskey minimization");
  parser.flag("--stats", &req.show_stats, "per-output cube/literal stats");
  parser.flag("--single-pass", &req.single_pass,
              "ablation: one expand/reduce pass");
  l2l::tools::add_request_flags(parser, req);
  if (const auto st = parser.parse(argc, argv); !st.ok()) {
    std::cerr << "error: " << st.message << "\n";
    return l2l::util::kExitUsage;
  }
  l2l::tools::apply_cache_flags(common);

  if (!l2l::tools::read_input_text(parser, req.pla))
    return l2l::util::kExitUsage;

  if (common.lint) {
    const auto findings = l2l::lint::lint_pla(req.pla);
    bool fatal = false;
    for (const auto& f : findings) {
      std::cerr << "# lint: " << f.to_string() << "\n";
      fatal = fatal || f.severity == l2l::util::Severity::kError;
    }
    if (fatal) {
      std::cerr << "error: "
                << l2l::util::Status::parse_error("lint found errors")
                       .to_string()
                << "\n";
      return l2l::util::kExitParse;
    }
  }
  if (common.sema) {
    const auto findings = l2l::sema::analyze_pla(req.pla);
    bool fatal = false;
    for (const auto& f : findings) {
      std::cerr << "# sema: " << f.to_string() << "\n";
      fatal = fatal || f.severity == l2l::util::Severity::kError;
    }
    if (fatal) {
      std::cerr << "error: "
                << l2l::util::Status::parse_error("sema found errors")
                       .to_string()
                << "\n";
      return l2l::util::kExitParse;
    }
  }

  const auto res = l2l::api::minimize_pla(req);
  if (!res.status.ok()) {
    std::cerr << "error: " << res.status.to_string() << "\n";
    return res.exit_code;
  }
  std::cerr << res.stats_output;
  std::cout << res.output;
  return res.exit_code;
} catch (const std::exception& e) {
  std::cerr << "error: " << l2l::util::Status::internal(e.what()).to_string()
            << "\n";
  return l2l::util::kExitInternal;
} catch (...) {
  std::cerr << "error: internal-error: unknown\n";
  return l2l::util::kExitInternal;
}
