// minisat_lite: DIMACS CNF SAT solver front-end (the MOOC's miniSAT [8]
// portal workalike). Reads DIMACS from a file argument or stdin; prints
// SATISFIABLE with a model line, or UNSATISFIABLE, plus solver statistics.
// The engine call goes through api::solve_sat, so repeated identical
// inputs replay from the result cache byte-for-byte.
//
// Flags: --no-vsids --no-restarts (heuristic ablations), --stats,
// --time-limit-ms N / --prop-limit N (resource guards; an INDETERMINATE
// result from an exhausted guard exits 4), --lint (run the L2L-Cxxx rule
// pack first; findings print as 'c lint:' comment lines and lint errors
// exit 3 before the solver starts), plus the shared pack from
// tools/common_cli.hpp (--metrics/--trace/--cache/--no-cache/--cache-dir).
//
// Exit codes: 10 SAT, 20 UNSAT (the MiniSat convention), plus the shared
// convention for everything else: 2 usage/IO, 3 malformed input, 4 budget
// exceeded, 5 internal error.

#include <iostream>
#include <string>

#include "api/sat.hpp"
#include "common_cli.hpp"
#include "lint/lint.hpp"
#include "obs/trace.hpp"
#include "sema/sema.hpp"
#include "util/arg_parser.hpp"
#include "util/status.hpp"

namespace {

int fail(const l2l::util::Status& status) {
  std::cerr << "error: " << status.to_string() << "\n";
  return l2l::util::exit_code_for(status);
}

}  // namespace

int main(int argc, char** argv) try {
  l2l::obs::ExportOnExit obs_export;
  l2l::api::SatRequest req;
  l2l::tools::CommonFlags common;
  bool no_vsids = false;
  bool no_restarts = false;

  l2l::util::ArgParser parser;
  l2l::tools::add_common_flags(parser, common, obs_export);
  parser.flag("--no-vsids", &no_vsids, "disable the VSIDS decision heuristic");
  parser.flag("--no-restarts", &no_restarts, "disable Luby restarts");
  parser.flag("--stats", &req.show_stats, "print the solver statistics line");
  l2l::tools::add_request_flags(parser, req);
  parser.int64_value("--prop-limit", &req.prop_limit, "propagation budget");
  if (const auto st = parser.parse(argc, argv); !st.ok()) return fail(st);
  l2l::tools::apply_cache_flags(common);
  req.options.use_vsids = !no_vsids;
  req.options.use_restarts = !no_restarts;

  if (!l2l::tools::read_input_text(parser, req.dimacs))
    return l2l::util::kExitUsage;

  if (common.lint) {
    const auto findings = l2l::lint::lint_cnf(req.dimacs);
    bool fatal = false;
    for (const auto& f : findings) {
      std::cout << "c lint: " << f.to_string() << "\n";
      fatal = fatal || f.severity == l2l::util::Severity::kError;
    }
    if (fatal)
      return fail(l2l::util::Status::parse_error("lint found errors"));
  }
  if (common.sema) {
    const auto findings = l2l::sema::analyze_cnf(req.dimacs);
    bool fatal = false;
    for (const auto& f : findings) {
      std::cout << "c sema: " << f.to_string() << "\n";
      fatal = fatal || f.severity == l2l::util::Severity::kError;
    }
    if (fatal)
      return fail(l2l::util::Status::parse_error("sema found errors"));
  }

  const auto res = l2l::api::solve_sat(req);
  std::cout << res.output;
  if (!res.status.ok()) return fail(res.status);
  return res.exit_code;
} catch (const std::exception& e) {
  std::cerr << "error: " << l2l::util::Status::internal(e.what()).to_string()
            << "\n";
  return l2l::util::kExitInternal;
} catch (...) {
  std::cerr << "error: internal-error: unknown\n";
  return l2l::util::kExitInternal;
}
