// minisat_lite: DIMACS CNF SAT solver front-end (the MOOC's miniSAT [8]
// portal workalike). Reads DIMACS from a file argument or stdin; prints
// SATISFIABLE with a model line, or UNSATISFIABLE, plus solver statistics.
//
// Flags: --no-vsids --no-restarts (heuristic ablations), --stats,
// --time-limit-ms N / --prop-limit N (resource guards; an INDETERMINATE
// result from an exhausted guard exits 4), --lint (run the L2L-Cxxx rule
// pack first; findings print as 'c lint:' comment lines and lint errors
// exit 3 before the solver starts), --metrics FILE / --trace FILE
// (observability export, written on every exit path).
//
// Exit codes: 10 SAT, 20 UNSAT (the MiniSat convention), plus the shared
// convention for everything else: 2 usage/IO, 3 malformed input, 4 budget
// exceeded, 5 internal error.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "lint/lint.hpp"
#include "obs/trace.hpp"
#include "sat/dimacs.hpp"
#include "sat/solver.hpp"
#include "util/budget.hpp"
#include "util/status.hpp"
#include "util/strings.hpp"

namespace {

int fail(const l2l::util::Status& status) {
  std::cerr << "error: " << status.to_string() << "\n";
  return l2l::util::exit_code_for(status);
}

}  // namespace

int main(int argc, char** argv) try {
  l2l::obs::ExportOnExit obs_export;
  l2l::sat::SolverOptions opt;
  l2l::util::Budget budget;
  bool show_stats = false;
  bool have_budget = false;
  bool lint = false;
  std::string path;
  for (int k = 1; k < argc; ++k) {
    const std::string arg = argv[k];
    if (arg == "--lint") {
      lint = true;
    } else if (arg == "--no-vsids") {
      opt.use_vsids = false;
    } else if (arg == "--no-restarts") {
      opt.use_restarts = false;
    } else if (arg == "--stats") {
      show_stats = true;
    } else if (arg == "--time-limit-ms" || arg == "--prop-limit") {
      if (k + 1 >= argc)
        return fail(l2l::util::Status::invalid(arg + " needs a value"));
      const auto v = l2l::util::parse_int64(argv[++k]);
      if (!v || *v < 0)
        return fail(l2l::util::Status::invalid("bad " + arg + " value"));
      if (arg == "--time-limit-ms")
        budget.set_deadline_ms(*v);
      else
        budget.set_step_limit(*v);
      have_budget = true;
    } else if (arg == "--metrics" || arg == "--trace") {
      if (k + 1 >= argc)
        return fail(l2l::util::Status::invalid(arg + " needs a value"));
      (arg == "--metrics" ? obs_export.metrics_path
                          : obs_export.trace_path) = argv[++k];
    } else {
      path = arg;
    }
  }
  if (have_budget) opt.budget = &budget;

  std::string text;
  if (!path.empty()) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "cannot open " << path << "\n";
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    text = ss.str();
  } else {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    text = ss.str();
  }

  if (lint) {
    const auto findings = l2l::lint::lint_cnf(text);
    bool fatal = false;
    for (const auto& f : findings) {
      std::cout << "c lint: " << f.to_string() << "\n";
      fatal = fatal || f.severity == l2l::util::Severity::kError;
    }
    if (fatal)
      return fail(l2l::util::Status::parse_error("lint found errors"));
  }

  l2l::sat::CnfFormula formula;
  try {
    formula = l2l::sat::parse_dimacs(text);
  } catch (const std::exception& e) {
    return fail(l2l::util::Status::parse_error(e.what()));
  }
  l2l::sat::Solver solver(opt);
  l2l::sat::LBool result = l2l::sat::LBool::kFalse;
  if (l2l::sat::load_into_solver(formula, solver)) result = solver.solve();
  std::cout << l2l::sat::result_text(solver, result);
  if (show_stats) {
    const auto& s = solver.stats();
    std::cout << "c decisions " << s.decisions << " propagations "
              << s.propagations << " conflicts " << s.conflicts
              << " restarts " << s.restarts << " learnts "
              << s.learnt_clauses << "\n";
  }
  if (result == l2l::sat::LBool::kTrue) return 10;
  if (result == l2l::sat::LBool::kFalse) return 20;
  // INDETERMINATE: report why the solver stopped. A tripped resource
  // guard exits 4 so grading scripts can tell "slow" from "wrong".
  if (!solver.stop_reason().ok()) return fail(solver.stop_reason());
  return l2l::util::kExitOk;
} catch (const std::exception& e) {
  std::cerr << "error: " << l2l::util::Status::internal(e.what()).to_string()
            << "\n";
  return l2l::util::kExitInternal;
} catch (...) {
  std::cerr << "error: internal-error: unknown\n";
  return l2l::util::kExitInternal;
}
