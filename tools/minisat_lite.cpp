// minisat_lite: DIMACS CNF SAT solver front-end (the MOOC's miniSAT [8]
// portal workalike). Reads DIMACS from a file argument or stdin; prints
// SATISFIABLE with a model line, or UNSATISFIABLE, plus solver statistics.
//
// Flags: --no-vsids --no-restarts (heuristic ablations), --stats.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "sat/dimacs.hpp"
#include "sat/solver.hpp"

int main(int argc, char** argv) {
  l2l::sat::SolverOptions opt;
  bool show_stats = false;
  std::string path;
  for (int k = 1; k < argc; ++k) {
    const std::string arg = argv[k];
    if (arg == "--no-vsids")
      opt.use_vsids = false;
    else if (arg == "--no-restarts")
      opt.use_restarts = false;
    else if (arg == "--stats")
      show_stats = true;
    else
      path = arg;
  }

  std::string text;
  if (!path.empty()) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "cannot open " << path << "\n";
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    text = ss.str();
  } else {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    text = ss.str();
  }

  try {
    const auto formula = l2l::sat::parse_dimacs(text);
    l2l::sat::Solver solver(opt);
    l2l::sat::LBool result = l2l::sat::LBool::kFalse;
    if (l2l::sat::load_into_solver(formula, solver)) result = solver.solve();
    std::cout << l2l::sat::result_text(solver, result);
    if (show_stats) {
      const auto& s = solver.stats();
      std::cout << "c decisions " << s.decisions << " propagations "
                << s.propagations << " conflicts " << s.conflicts
                << " restarts " << s.restarts << " learnts "
                << s.learnt_clauses << "\n";
    }
    return result == l2l::sat::LBool::kTrue ? 10
           : result == l2l::sat::LBool::kFalse ? 20
                                               : 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
