// l2l-lint: static design-rule analysis for every artifact the portal
// tools and graders consume -- BLIF, PLA, DIMACS CNF, placement text,
// routing problems and solutions, kbdd scripts, axb systems. Rejects
// hostile or broken inputs in milliseconds, before any engine budget is
// spent; every finding carries a stable rule ID (see DESIGN.md "Static
// analysis & lint" or --rules).
//
// Usage: l2l-lint [options] [files... | -]   (no files / "-" = stdin)
//   --format NAME   force a format: blif pla cnf place route-problem
//                   route-solution kbdd axb (default: extension, then
//                   content sniff)
//   --json          machine-readable report instead of text
//   --Werror        warnings fail the gate too
//   --sema          also run the semantic analyzer (l2l::sema) on BLIF,
//                   CNF, and PLA inputs: cycles, undriven/multi-driven
//                   nets, dead logic, stuck-at constants, duplicate
//                   gates, redundant cubes, solver-free contradictions
//   --rules         print the rule registry and exit (--sema appends
//                   the semantic rules)
//   --cells N       placement: expected cell count
//   --grid CxR      placement: sites-per-row x rows region bound
//   --problem FILE  routing solutions: the problem to check against
//   --metrics FILE / --trace FILE   observability export
//
// Exit codes (PR 2 convention): 0 clean, 2 usage/IO error, 3 lint gate
// failed (errors, or warnings under --Werror), 5 internal error.

#include <fstream>
#include <iostream>
#include <sstream>

#include "lint/lint.hpp"
#include "obs/trace.hpp"
#include "sema/sema.hpp"
#include "route/solution.hpp"
#include "util/status.hpp"
#include "util/strings.hpp"

namespace {

int usage(const std::string& msg) {
  std::cerr << "error: " << msg << "\n"
            << "usage: l2l-lint [--format NAME] [--json] [--Werror] "
               "[--sema] [--rules]\n"
               "                [--cells N] [--grid CxR] [--problem FILE]\n"
               "                [--metrics FILE] [--trace FILE] "
               "[files... | -]\n";
  return l2l::util::kExitUsage;
}

std::string read_stream(std::istream& in) {
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) try {
  l2l::obs::ExportOnExit obs_export;
  l2l::lint::LintOptions opt;
  bool json = false, werror = false, sema = false, rules = false;
  std::string problem_path;
  std::vector<std::string> paths;
  for (int k = 1; k < argc; ++k) {
    const std::string arg = argv[k];
    auto value = [&]() -> const char* {
      return k + 1 < argc ? argv[++k] : nullptr;
    };
    if (arg == "--json") {
      json = true;
    } else if (arg == "--Werror") {
      werror = true;
    } else if (arg == "--sema") {
      sema = true;
    } else if (arg == "--rules") {
      rules = true;  // handled after the loop so `--rules --sema` works
    } else if (arg == "--format") {
      const char* v = value();
      if (!v) return usage("--format needs a value");
      const auto f = l2l::lint::parse_format_name(v);
      if (!f) return usage(std::string("unknown format '") + v + "'");
      opt.format = *f;
    } else if (arg == "--cells") {
      const char* v = value();
      const auto n = v ? l2l::util::parse_int(v) : std::nullopt;
      if (!n || *n < 0) return usage("--cells needs a non-negative integer");
      opt.placement.num_cells = *n;
    } else if (arg == "--grid") {
      const char* v = value();
      const auto tok = v ? l2l::util::split(v, "x") : std::vector<std::string>{};
      const auto c = tok.size() == 2 ? l2l::util::parse_int(tok[0])
                                     : std::nullopt;
      const auto r = tok.size() == 2 ? l2l::util::parse_int(tok[1])
                                     : std::nullopt;
      if (!c || !r || *c < 1 || *r < 1)
        return usage("--grid wants '<cols>x<rows>', e.g. 20x20");
      opt.placement.cols = *c;
      opt.placement.rows = *r;
    } else if (arg == "--problem") {
      const char* v = value();
      if (!v) return usage("--problem needs a file");
      problem_path = v;
    } else if (arg == "--metrics" || arg == "--trace") {
      const char* v = value();
      if (!v) return usage(arg + " needs a value");
      (arg == "--metrics" ? obs_export.metrics_path
                          : obs_export.trace_path) = v;
    } else if (arg == "-") {
      paths.push_back("-");
    } else if (l2l::util::starts_with(arg, "--")) {
      return usage("unknown flag '" + arg + "'");
    } else {
      paths.push_back(arg);
    }
  }

  if (rules) {
    auto print = [](const std::vector<l2l::lint::RuleInfo>& rs) {
      for (const auto& r : rs)
        std::cout << r.id << "  " << l2l::lint::severity_name(r.severity)
                  << "  " << r.summary << "\n";
    };
    print(l2l::lint::all_rules());
    if (sema) print(l2l::sema::all_rules());
    return l2l::util::kExitOk;
  }

  // The routing problem gates the solution pack's geometric rules; a
  // malformed problem file is itself a lintable artifact, so report it
  // through the same machinery instead of dying on the parse.
  l2l::gen::RoutingProblem problem;
  if (!problem_path.empty()) {
    std::ifstream in(problem_path);
    if (!in) return usage("cannot open " + problem_path);
    const auto text = read_stream(in);
    try {
      problem = l2l::route::parse_problem(text);
      opt.route_problem = &problem;
    } catch (const std::exception&) {
      l2l::lint::LintOptions popt;
      popt.format = l2l::lint::Format::kRouteProblem;
      l2l::lint::Report rep;
      rep.files.push_back(l2l::lint::lint_text(problem_path, text, popt));
      std::cout << (json ? rep.to_json() : rep.to_text());
      return l2l::util::kExitParse;
    }
  }

  std::vector<std::pair<std::string, std::string>> inputs;
  if (paths.empty()) paths.push_back("-");
  for (const auto& p : paths) {
    if (p == "-") {
      inputs.emplace_back("<stdin>", read_stream(std::cin));
      continue;
    }
    std::ifstream in(p);
    if (!in) return usage("cannot open " + p);
    inputs.emplace_back(p, read_stream(in));
  }

  auto report = l2l::lint::lint_files(inputs, opt);
  if (sema) {
    // Semantic findings ride in the same report: merge per file and
    // re-sort into the canonical (line, column, rule) render order.
    const auto sem = l2l::sema::analyze_files(inputs, opt.format);
    for (std::size_t k = 0; k < report.files.size(); ++k) {
      auto& fr = report.files[k];
      const auto& sf = sem.files[k].findings;
      fr.findings.insert(fr.findings.end(), sf.begin(), sf.end());
      l2l::lint::sort_findings(fr.findings);
    }
  }
  std::cout << (json ? report.to_json() : report.to_text());
  return report.pass(werror) ? l2l::util::kExitOk : l2l::util::kExitParse;
} catch (const std::exception& e) {
  std::cerr << "error: " << l2l::util::Status::internal(e.what()).to_string()
            << "\n";
  return l2l::util::kExitInternal;
} catch (...) {
  std::cerr << "error: internal-error: unknown\n";
  return l2l::util::kExitInternal;
}
