// sis_lite: multi-level logic optimization scripting environment in the
// spirit of SIS [11] -- the MOOC's multi-level portal. Reads commands from
// a script file or stdin; the working network is loaded with read_blif.
//
// Commands:
//   read_blif <file>         load a network (or `read_blif -` + inline
//                            BLIF terminated by `.end`)
//   write_blif [file]        dump the network (default stdout)
//   print_stats              nodes / literals / levels
//   print_factor <node>      factored form of one node
//   sweep | eliminate [N] | gkx | gcx | resub | simplify | full_simplify
//   script.algebraic         the canned optimization script (runs through
//                            api::optimize_network, so the result cache
//                            replays identical networks)
//   map [-delay]             technology map and report area/delay
//   quit
//
// Usage: sis_lite [--lint] [shared pack: --metrics/--trace/--cache/
// --no-cache/--cache-dir] [script-file] (default input: stdin). --lint
// runs the L2L-Bxxx rule pack on every network read_blif loads; lint
// errors abort with exit 3 before parsing.
//
// Exit codes: 0 ok, 2 usage/IO, 3 malformed script or BLIF, 5 internal
// error.

#include <fstream>
#include <iostream>
#include <sstream>

#include "api/mls.hpp"
#include "common_cli.hpp"
#include "lint/lint.hpp"
#include "mls/factor.hpp"
#include "mls/passes.hpp"
#include "mls/script.hpp"
#include "mls/sop.hpp"
#include "network/blif.hpp"
#include "obs/trace.hpp"
#include "sema/sema.hpp"
#include "techmap/mapper.hpp"
#include "util/arg_parser.hpp"
#include "util/status.hpp"
#include "util/strings.hpp"

namespace {

using l2l::network::Network;

int run(std::istream& in, std::ostream& out, bool lint, bool sema) {
  Network net;
  bool loaded = false;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto t = std::string(l2l::util::trim(line));
    if (t.empty() || t[0] == '#') continue;
    const auto tok = l2l::util::split(t);
    try {
      if (tok[0] == "read_blif") {
        if (tok.size() < 2) throw std::runtime_error("read_blif needs a file");
        std::string text;
        if (tok[1] == "-") {
          std::string bl;
          while (std::getline(in, bl)) {
            text += bl + "\n";
            if (std::string(l2l::util::trim(bl)) == ".end") break;
          }
        } else {
          std::ifstream f(tok[1]);
          if (!f) throw std::runtime_error("cannot open " + tok[1]);
          std::ostringstream ss;
          ss << f.rdbuf();
          text = ss.str();
        }
        if (lint) {
          const auto findings = l2l::lint::lint_blif(text);
          bool fatal = false;
          for (const auto& f : findings) {
            out << "lint: " << f.to_string() << "\n";
            fatal = fatal || f.severity == l2l::util::Severity::kError;
          }
          if (fatal) throw std::runtime_error("lint found errors in " + tok[1]);
        }
        if (sema) {
          const auto analysis = l2l::sema::analyze_blif(text);
          bool fatal = false;
          for (const auto& f : analysis.findings) {
            out << "sema: " << f.to_string() << "\n";
            fatal = fatal || f.severity == l2l::util::Severity::kError;
          }
          if (fatal) throw std::runtime_error("sema found errors in " + tok[1]);
        }
        net = l2l::network::parse_blif(text);
        loaded = true;
        out << "read " << net.model_name() << ": " << net.inputs().size()
            << " inputs, " << net.outputs().size() << " outputs, "
            << net.num_logic_nodes() << " nodes\n";
        continue;
      }
      if (!loaded) throw std::runtime_error("no network loaded");
      if (tok[0] == "write_blif") {
        const auto text = l2l::network::write_blif(net);
        if (tok.size() > 1) {
          std::ofstream f(tok[1]);
          f << text;
          out << "wrote " << tok[1] << "\n";
        } else {
          out << text;
        }
      } else if (tok[0] == "print_stats") {
        int max_level = 0;
        for (const int l : net.levels()) max_level = std::max(max_level, l);
        out << net.model_name() << ": nodes " << net.num_logic_nodes()
            << ", literals " << net.num_literals() << ", levels "
            << max_level << "\n";
      } else if (tok[0] == "print_factor") {
        const auto id = net.find(tok.at(1));
        if (!id) throw std::runtime_error("unknown node " + tok[1]);
        const auto sop = l2l::mls::sop_of_node(net, *id);
        const auto expr = l2l::mls::factor(sop);
        out << tok[1] << " = " << l2l::mls::expr_to_string(net, expr) << "  ("
            << l2l::mls::expr_literals(expr) << " literals factored, "
            << l2l::mls::sop_literals(sop) << " flat)\n";
      } else if (tok[0] == "sweep") {
        out << "swept " << l2l::mls::sweep(net) << " nodes\n";
      } else if (tok[0] == "eliminate") {
        int threshold = 0;
        if (tok.size() > 1) {
          const auto v = l2l::util::parse_int(tok[1]);
          if (!v) throw std::runtime_error("bad eliminate threshold " + tok[1]);
          threshold = *v;
        }
        out << "eliminated " << l2l::mls::eliminate(net, threshold)
            << " nodes\n";
      } else if (tok[0] == "gkx") {
        out << "extracted " << l2l::mls::extract_kernels(net) << " kernels\n";
      } else if (tok[0] == "gcx") {
        out << "extracted " << l2l::mls::extract_cubes(net) << " cubes\n";
      } else if (tok[0] == "resub") {
        out << "resubstituted " << l2l::mls::resubstitute(net) << " nodes\n";
      } else if (tok[0] == "simplify") {
        out << "saved " << l2l::mls::simplify_nodes(net) << " literals\n";
      } else if (tok[0] == "full_simplify") {
        out << "saved " << l2l::mls::simplify_with_sdc(net)
            << " literals (with SDC)\n";
      } else if (tok[0] == "script.algebraic") {
        const auto res =
            l2l::api::optimize_network(net, l2l::mls::ScriptOptions{});
        out << res.stats.to_string() << "\n";
      } else if (tok[0] == "map") {
        const auto obj = tok.size() > 1 && tok[1] == "-delay"
                             ? l2l::techmap::MapObjective::kDelay
                             : l2l::techmap::MapObjective::kArea;
        const auto res = l2l::techmap::technology_map(
            net, l2l::techmap::default_library(), obj);
        out << "mapped: " << res.gates.size() << " gates, area "
            << res.total_area << ", delay " << res.critical_delay << "\n";
      } else if (tok[0] == "quit" || tok[0] == "exit") {
        break;
      } else {
        throw std::runtime_error("unknown command " + tok[0]);
      }
    } catch (const std::exception& e) {
      // Script and BLIF errors are malformed input, not tool failures:
      // exit 3 under the shared convention so graders can classify them.
      out << "error on line " << lineno << ": " << e.what() << "\n";
      return l2l::util::kExitParse;
    }
  }
  return l2l::util::kExitOk;
}

}  // namespace

int main(int argc, char** argv) try {
  l2l::obs::ExportOnExit obs_export;
  l2l::tools::CommonFlags common;

  l2l::util::ArgParser parser;
  l2l::tools::add_common_flags(parser, common, obs_export);
  if (const auto st = parser.parse(argc, argv); !st.ok()) {
    std::cerr << "error: " << st.message << "\n";
    return l2l::util::kExitUsage;
  }
  l2l::tools::apply_cache_flags(common);

  // The interpreter streams its input (read_blif - consumes the lines
  // that follow), so the file/stdin choice stays a live stream here
  // instead of going through read_input_text.
  if (!parser.positionals().empty()) {
    const auto& path = parser.positionals().front();
    std::ifstream in(path);
    if (!in) {
      std::cerr << "cannot open " << path << "\n";
      return l2l::util::kExitUsage;
    }
    return run(in, std::cout, common.lint, common.sema);
  }
  return run(std::cin, std::cout, common.lint, common.sema);
} catch (const std::exception& e) {
  std::cerr << "error: " << l2l::util::Status::internal(e.what()).to_string()
            << "\n";
  return l2l::util::kExitInternal;
} catch (...) {
  std::cerr << "error: internal-error: unknown\n";
  return l2l::util::kExitInternal;
}
