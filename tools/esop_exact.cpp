// esop_exact: SAT-based exact ESOP synthesis front-end (the eighth
// course tool portal). Reads a PLA or a single raw truth-table row
// ("0110", LSB first) from a file argument or stdin, finds a
// minimum-term exclusive-or sum of products for every output with the
// incremental SAT engine in src/esop/, and writes the `.type esop` PLA
// to stdout. Synthesis goes through api::synthesize_esop, so identical
// inputs replay from the result cache byte-identically.
//
// Flags: --max-terms N (cap per output), --conflict-limit N,
// --prop-limit N, --time-limit-ms N, --stats, --lint (run the L2L-Pxxx
// PLA rule pack first when the input is a PLA), plus the shared pack
// from tools/common_cli.hpp (--metrics/--trace/--cache/--no-cache/
// --cache-dir).
//
// Exit codes: 0 ok, 2 usage/IO, 3 malformed or oversized input,
// 4 budget/term-cap exhausted (partial bounds in --stats output),
// 5 internal error -- a decoded SAT model that fails verification is
// NEVER printed as an answer.

#include <cstdint>
#include <iostream>
#include <string>

#include "api/esop.hpp"
#include "common_cli.hpp"
#include "lint/lint.hpp"
#include "obs/trace.hpp"
#include "sema/sema.hpp"
#include "util/arg_parser.hpp"
#include "util/status.hpp"

int main(int argc, char** argv) try {
  l2l::obs::ExportOnExit obs_export;
  l2l::api::EsopRequest req;
  l2l::tools::CommonFlags common;

  l2l::util::ArgParser parser;
  l2l::tools::add_common_flags(parser, common, obs_export);
  std::int64_t max_terms = -1;
  parser.int64_value("--max-terms", &max_terms,
                     "cap on product terms per output");
  parser.int64_value("--conflict-limit", &req.conflict_limit,
                     "SAT conflict cap per query");
  parser.int64_value("--prop-limit", &req.prop_limit,
                     "total SAT propagation budget");
  l2l::tools::add_request_flags(parser, req);
  parser.flag("--stats", &req.show_stats,
              "per-output term counts, bounds, and query stats");
  if (const auto st = parser.parse(argc, argv); !st.ok()) {
    std::cerr << "error: " << st.message << "\n";
    return l2l::util::kExitUsage;
  }
  l2l::tools::apply_cache_flags(common);
  req.max_terms = static_cast<int>(max_terms);

  if (!l2l::tools::read_input_text(parser, req.input))
    return l2l::util::kExitUsage;

  if (common.lint && req.input.find('.') != std::string::npos) {
    const auto findings = l2l::lint::lint_pla(req.input);
    bool fatal = false;
    for (const auto& f : findings) {
      std::cerr << "# lint: " << f.to_string() << "\n";
      fatal = fatal || f.severity == l2l::util::Severity::kError;
    }
    if (fatal) {
      std::cerr << "error: "
                << l2l::util::Status::parse_error("lint found errors")
                       .to_string()
                << "\n";
      return l2l::util::kExitParse;
    }
  }
  if (common.sema && req.input.find('.') != std::string::npos) {
    const auto findings = l2l::sema::analyze_pla(req.input);
    bool fatal = false;
    for (const auto& f : findings) {
      std::cerr << "# sema: " << f.to_string() << "\n";
      fatal = fatal || f.severity == l2l::util::Severity::kError;
    }
    if (fatal) {
      std::cerr << "error: "
                << l2l::util::Status::parse_error("sema found errors")
                       .to_string()
                << "\n";
      return l2l::util::kExitParse;
    }
  }

  const auto res = l2l::api::synthesize_esop(req);
  std::cerr << res.stats_output;
  if (!res.status.ok()) {
    std::cerr << "error: " << res.status.to_string() << "\n";
    return res.exit_code;
  }
  std::cout << res.output;
  return res.exit_code;
} catch (const std::exception& e) {
  std::cerr << "error: " << l2l::util::Status::internal(e.what()).to_string()
            << "\n";
  return l2l::util::kExitInternal;
} catch (...) {
  std::cerr << "error: internal-error: unknown\n";
  return l2l::util::kExitInternal;
}
