// grading_service: drive the persistent sharded grading daemon
// (mooc::GradingService) over a generated semester trace -- the
// operational loop behind the paper's planet-scale homework grading.
// Generates a deadline-clustered, duplicate-heavy submission trace
// (mooc::generate_submission_trace), drains it through the tick-driven
// service with admission control, backpressure shedding, priority lanes,
// and per-course circuit breakers, then prints the accounting report.
//
//   --courses N        courses sharing the fleet        (default 2)
//   --students N       registrants across all courses   (default 20000)
//   --ticks N          semester length in ticks         (default 200)
//   --queue-cap N      per-course queue bound           (default 1024)
//   --admit-quota N    per-course per-tick admissions   (default 256)
//   --service-rate N   per-course grades per tick       (default 64)
//   --shed-policy P    oldest-deadline | newest-first | none
//   --fault-storm      inject a mid-semester fault storm (trips breakers)
//   --seed N           trace seed
//
// Durability / sharding (mooc/journal.hpp, mooc/shard_map.hpp):
//
//   --journal-dir D      journal every decision to D/shard-<s>.l2lj,
//                        flushed once per tick
//   --recover            replay an existing journal first (quarantining
//                        any torn tail), then continue the drain live
//   --shards N           drain the trace as N consistent-hash shards run
//                        sequentially, then merge -- provably equal to
//                        the single-process drain
//   --halt-after-tick K  stop cold before tick K (the crash harness's
//                        deterministic SIGKILL); prints the partial
//                        report, skips the accounting check, exits 0
//
// Shared pack: --lint/--metrics/--trace/--cache/--no-cache/--cache-dir.
// Every line of the report except the trailing "# wall-clock" comment is
// deterministic: bit-identical at any L2L_THREADS value and across runs.
// The "sharding:" and "journal:" lines describe the run topology, not
// the drain; comparison tests filter them before diffing reports.
//
// Exit codes follow the shared convention (util/status.hpp): 0 ok,
// 2 usage, 3 malformed flag value (including out-of-range TraceOptions
// and a --recover journal written for a different trace/config),
// 5 internal error (a broken accounting invariant or a journal replay
// divergence -- the service must never drop work silently).

#include <iostream>
#include <string>
#include <vector>

#include "cache/digest.hpp"
#include "common_cli.hpp"
#include "mooc/cohort.hpp"
#include "mooc/grading_service.hpp"
#include "mooc/shard_map.hpp"
#include "mooc/submission_lint.hpp"
#include "obs/trace.hpp"
#include "util/arg_parser.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace {

int fail(const l2l::util::Status& status) {
  std::cerr << "error: " << status.to_string() << "\n";
  return l2l::util::exit_code_for(status);
}

/// The stand-in grader: re-digests the submission a few dozen rounds,
/// the cost shape of a real parse+verify pass. Deterministic, budget-
/// aware (one step per round), so the cache may replay it.
double digest_grade(const std::string& s, const l2l::util::Budget& guard) {
  l2l::cache::Digest128 d = l2l::cache::digest_bytes(s);
  for (int r = 0; r < 32; ++r) {
    if (!guard.consume(1)) break;
    l2l::cache::Hasher h;
    h.u64(d.hi).u64(d.lo).str(s);
    d = h.finish();
  }
  return static_cast<double>(d.lo % 101);
}

}  // namespace

int main(int argc, char** argv) try {
  l2l::obs::ExportOnExit obs_export;
  l2l::tools::CommonFlags common;

  std::int64_t courses = 2;
  std::int64_t students = 20000;
  std::int64_t ticks = 200;
  std::int64_t queue_cap = 1024;
  std::int64_t admit_quota = 256;
  std::int64_t service_rate = 64;
  std::int64_t seed = 1;
  bool fault_storm = false;
  std::string journal_dir;
  bool recover = false;
  std::int64_t shards = 1;
  std::int64_t halt_after_tick = -1;
  l2l::mooc::ServiceOptions sopt;

  l2l::util::ArgParser parser;
  l2l::tools::add_common_flags(parser, common, obs_export);
  parser.int64_value("--courses", &courses, "courses sharing the fleet");
  parser.int64_value("--students", &students, "registrants across courses");
  parser.int64_value("--ticks", &ticks, "semester length in ticks");
  parser.int64_value("--queue-cap", &queue_cap, "per-course queue bound");
  parser.int64_value("--admit-quota", &admit_quota,
                     "per-course per-tick admission quota");
  parser.int64_value("--service-rate", &service_rate,
                     "per-course grades per tick");
  parser.value_fn(
      "--shed-policy",
      [&](const std::string& v) {
        if (l2l::mooc::parse_shed_policy(v, sopt.shed_policy))
          return l2l::util::Status::okay();
        return l2l::util::Status::parse_error(
            "--shed-policy wants oldest-deadline | newest-first | none");
      },
      "oldest-deadline | newest-first | none");
  parser.flag("--fault-storm", &fault_storm,
              "inject a mid-semester worker-fault storm");
  parser.int64_value("--seed", &seed, "trace seed");
  parser.value("--journal-dir", &journal_dir,
               "journal decisions to DIR/shard-<s>.l2lj");
  parser.flag("--recover", &recover,
              "replay the existing journal before continuing the drain");
  parser.int64_value("--shards", &shards,
                     "drain as N consistent-hash shards, then merge");
  parser.int64_value("--halt-after-tick", &halt_after_tick,
                     "stop cold before tick K (simulated crash)");
  if (const auto st = parser.parse(argc, argv); !st.ok()) return fail(st);
  l2l::tools::apply_cache_flags(common);

  if (shards < 1 || shards > 64)
    return fail(l2l::util::Status::invalid("--shards wants [1, 64]"));

  l2l::mooc::TraceOptions topt;
  topt.num_courses = static_cast<int>(courses);
  topt.num_students = static_cast<int>(students);
  topt.ticks = static_cast<std::uint32_t>(ticks);
  if (const auto st = l2l::mooc::validate(topt); !st.ok()) return fail(st);
  l2l::util::Rng rng(static_cast<std::uint64_t>(seed));
  const auto trace = l2l::mooc::generate_submission_trace(topt, rng);

  sopt.queue_cap = static_cast<int>(queue_cap);
  sopt.admit_quota = static_cast<int>(admit_quota);
  sopt.service_rate = static_cast<int>(service_rate);
  if (fault_storm) {
    // The storm covers the middle third of the semester, hot enough that
    // every retry budget drains and the breakers trip.
    sopt.storm_begin_tick = trace.ticks / 3;
    sopt.storm_end_tick = 2 * trace.ticks / 3;
    sopt.storm_transient_rate = 0.97;
    sopt.storm_stall_rate = 0.5;
  }
  if (common.sema) {
    // Semantic pre-grade: reject cyclic/contradictory artifacts before
    // any engine budget is spent. Composes with --lint (the header rule
    // rides along); verdicts are pure in the bytes, so they replay, and
    // the breaker-open degraded path still runs the callback.
    sopt.queue.lint = l2l::mooc::sema_submission_lint(common.lint);
  } else if (common.lint) {
    // The portal rule for generated uploads: a submission must carry the
    // "course" header line. Pure in the bytes, so verdicts replay.
    sopt.queue.lint = [](const std::string& body) {
      std::vector<l2l::util::Diagnostic> out;
      if (body.rfind("course ", 0) != 0)
        out.push_back(l2l::util::make_error(
            1, 1, "submission is missing the course header"));
      return out;
    };
  }

  // Drive each shard sequentially over the same trace (shards == 1 is
  // the plain single-process drain), journaling per shard if asked, then
  // merge -- the merged N-shard result equals the 1-process result.
  const auto num_shards = static_cast<int>(shards);
  const l2l::mooc::ShardMap shard_map(num_shards);
  std::vector<l2l::mooc::ServiceResult> parts;
  for (int shard = 0; shard < num_shards; ++shard) {
    l2l::mooc::ServiceOptions shard_opt = sopt;
    shard_opt.num_shards = num_shards;
    shard_opt.shard = shard;
    l2l::mooc::RunRequest rreq;
    if (!journal_dir.empty())
      rreq.journal_path =
          journal_dir + "/shard-" + std::to_string(shard) + ".l2lj";
    rreq.recover = recover;
    rreq.halt_after_ticks = halt_after_tick;
    const l2l::mooc::GradingService service(shard_opt, digest_grade);
    l2l::util::Status run_status;
    parts.push_back(service.run(trace, rreq, run_status));
    if (!run_status.ok()) return fail(run_status);
  }
  l2l::util::Status merge_status;
  const auto res = num_shards == 1
                       ? std::move(parts.front())
                       : l2l::mooc::merge_sharded(trace, shard_map, parts,
                                                  merge_status);
  if (!merge_status.ok()) return fail(merge_status);
  const auto& s = res.stats;

  std::cout << "service: courses=" << trace.num_courses
            << " students=" << students << " ticks=" << trace.ticks
            << " events=" << trace.events.size() << "\n";
  std::cout << "policy: queue-cap=" << sopt.queue_cap
            << " admit-quota=" << sopt.admit_quota
            << " service-rate=" << sopt.service_rate
            << " shed=" << l2l::mooc::shed_policy_name(sopt.shed_policy)
            << (fault_storm ? " fault-storm" : "") << "\n";
  // Topology lines: present only when the feature is on, and filtered by
  // the report-diff tests (the drain itself must match without them).
  if (num_shards > 1) {
    std::cout << "sharding: shards=" << num_shards << " courses=[";
    const auto per = shard_map.courses_per_shard(trace.num_courses);
    for (std::size_t i = 0; i < per.size(); ++i)
      std::cout << (i ? "," : "") << per[i];
    std::cout << "]\n";
  }
  if (!journal_dir.empty())
    std::cout << "journal: dir=" << journal_dir << " shards=" << num_shards
              << (recover ? " recovered" : "") << "\n";
  std::cout << "arrivals " << s.arrivals << " | admitted " << s.admitted
            << " | rejected-quota " << s.rejected_quota << " | rejected-full "
            << s.rejected_full << " | shed " << s.shed << "\n";
  std::cout << "graded " << s.graded << " | degraded " << s.degraded
            << " | failed " << s.failed << " | budget " << s.budget_exceeded
            << " | exhausted " << s.retries_exhausted << " | lint-rejected "
            << s.lint_rejected << "\n";
  std::cout << "dedup-hits " << s.dedup_hits << " | cache-hits "
            << s.cache_hits << "\n";
  std::cout << "breaker: trips " << s.breaker_trips << " | probes "
            << s.breaker_probes << " | recoveries " << s.breaker_recoveries
            << "\n";
  std::cout << "peak depth: first " << s.peak_depth_first << " | resubmit "
            << s.peak_depth_resubmit << "\n";
  std::cout << "ticks run " << s.ticks << "\n";
  if (res.halted)
    std::cout << "accounting: halted before tick " << halt_after_tick
              << " (queues not drained)\n";
  else
    std::cout << "accounting: admitted + rejected + shed == arrivals ("
              << (res.accounting_ok() ? "OK" : "BROKEN") << ")\n";

  // The only nondeterministic lines, quarantined behind a comment marker.
  std::int64_t total_us = 0;
  for (const auto us : res.tick_duration_us) total_us += us;
  const double secs = static_cast<double>(total_us) / 1e6;
  const double rate =
      secs > 0 ? static_cast<double>(s.admitted) / secs : 0.0;
  std::cout << "# wall-clock: " << static_cast<std::int64_t>(rate)
            << " submissions/sec, tick p50 "
            << l2l::mooc::tick_latency_percentile_us(res, 50.0)
            << " us, p99 " << l2l::mooc::tick_latency_percentile_us(res, 99.0)
            << " us\n";

  if (!res.halted && !res.accounting_ok())
    return fail(l2l::util::Status::internal(
        "accounting invariant broken: a submission was dropped silently"));
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << l2l::util::Status::internal(e.what()).to_string()
            << "\n";
  return l2l::util::kExitInternal;
} catch (...) {
  std::cerr << "error: internal-error: unknown\n";
  return l2l::util::kExitInternal;
}
