// kbdd_lite: a BDD-based Boolean calculator with a scripting language, in
// the spirit of CMU's kbdd [7] that the MOOC deployed as a cloud portal.
// The calculator itself lives behind api::run_bdd_script (src/api/bdd.cpp),
// so identical scripts replay from the result cache byte-for-byte; this
// main owns only the flags, the lint pre-pass, and the I/O.
//
// Script language (one command per line; '#' comments):
//   var a b c ...          declare variables (order = declaration order)
//   f = <expr>             define a function; expr uses ! & | ^ ( ) 0 1
//   print <f>              truth table (small var counts only)
//   satcount <f>           number of satisfying assignments
//   onesat <f>             one satisfying assignment or UNSAT
//   equal <f> <g>          EQUAL / NOT EQUAL (canonical O(1) compare)
//   size <f>               BDD node count
//   support <f>            variables the function depends on
//   cofactor <f> <var> <0|1>   assign the restriction to `it`
//   exists <f> <var> / forall <f> <var>  quantify, result in `it`
//   dot <f>                Graphviz DOT dump
//
// Usage: kbdd_lite [--lint] [--node-limit N] [--time-limit-ms N]
// [shared pack: --metrics/--trace/--cache/--no-cache/--cache-dir]
// [script-file] (default input: stdin). --lint runs the L2L-Kxxx rule
// pack over the whole script before any BDD is built; lint errors exit 3
// without executing a command.
//
// Exit codes: 0 ok, 2 usage/IO, 3 malformed script, 4 resource budget
// exceeded (node/time limit), 5 internal error.

#include <iostream>
#include <string>

#include "api/bdd.hpp"
#include "common_cli.hpp"
#include "lint/lint.hpp"
#include "obs/trace.hpp"
#include "util/arg_parser.hpp"
#include "util/status.hpp"

int main(int argc, char** argv) try {
  l2l::obs::ExportOnExit obs_export;
  l2l::api::BddScriptRequest req;
  l2l::tools::CommonFlags common;

  l2l::util::ArgParser parser;
  l2l::tools::add_common_flags(parser, common, obs_export);
  parser.int64_value("--node-limit", &req.node_limit, "BDD node budget");
  l2l::tools::add_request_flags(parser, req);
  if (const auto st = parser.parse(argc, argv); !st.ok()) {
    std::cerr << "error: " << st.message << "\n";
    return l2l::util::kExitUsage;
  }
  l2l::tools::apply_cache_flags(common);

  if (!l2l::tools::read_input_text(parser, req.script))
    return l2l::util::kExitUsage;

  if (common.lint) {
    const auto findings = l2l::lint::lint_kbdd_script(req.script);
    bool fatal = false;
    for (const auto& f : findings) {
      std::cout << "lint: " << f.to_string() << "\n";
      fatal = fatal || f.severity == l2l::util::Severity::kError;
    }
    if (fatal) {
      std::cerr << "error: "
                << l2l::util::Status::parse_error("lint found errors")
                       .to_string()
                << "\n";
      return l2l::util::kExitParse;
    }
  }

  const auto res = l2l::api::run_bdd_script(req);
  std::cout << res.output;
  return res.exit_code;
} catch (const std::exception& e) {
  std::cerr << "error: " << l2l::util::Status::internal(e.what()).to_string()
            << "\n";
  return l2l::util::kExitInternal;
} catch (...) {
  std::cerr << "error: internal-error: unknown\n";
  return l2l::util::kExitInternal;
}
