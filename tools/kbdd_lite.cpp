// kbdd_lite: a BDD-based Boolean calculator with a scripting language, in
// the spirit of CMU's kbdd [7] that the MOOC deployed as a cloud portal.
//
// Script language (one command per line; '#' comments):
//   var a b c ...          declare variables (order = declaration order)
//   f = <expr>             define a function; expr uses ! & | ^ ( ) 0 1
//   print <f>              truth table (small var counts only)
//   satcount <f>           number of satisfying assignments
//   onesat <f>             one satisfying assignment or UNSAT
//   equal <f> <g>          EQUAL / NOT EQUAL (canonical O(1) compare)
//   size <f>               BDD node count
//   support <f>            variables the function depends on
//   cofactor <f> <var> <0|1>   assign the restriction to `it`
//   exists <f> <var> / forall <f> <var>  quantify, result in `it`
//   dot <f>                Graphviz DOT dump
//
// Usage: kbdd_lite [--lint] [--node-limit N] [--time-limit-ms N]
// [--metrics FILE] [--trace FILE] [script-file] (default input: stdin).
// --lint runs the L2L-Kxxx rule pack over the whole script before any
// BDD is built; lint errors exit 3 without executing a command.
//
// Exit codes: 0 ok, 2 usage/IO, 3 malformed script, 4 resource budget
// exceeded (node/time limit), 5 internal error.

#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "bdd/bdd.hpp"
#include "bdd/manager.hpp"
#include "lint/lint.hpp"
#include "obs/trace.hpp"
#include "util/budget.hpp"
#include "util/status.hpp"
#include "util/strings.hpp"

namespace {

using l2l::bdd::Bdd;
using l2l::bdd::Manager;

class Calculator {
 public:
  void set_budget(const l2l::util::Budget* budget) { mgr_.set_budget(budget); }

  int run(std::istream& in, std::ostream& out) {
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      const auto t = std::string(l2l::util::trim(line));
      if (t.empty() || t[0] == '#') continue;
      try {
        execute(t, out);
      } catch (const l2l::util::BudgetExceededError& e) {
        out << "error on line " << lineno << ": " << e.what() << "\n";
        return l2l::util::exit_code_for(e.status());
      } catch (const std::exception& e) {
        out << "error on line " << lineno << ": " << e.what() << "\n";
        return l2l::util::kExitParse;
      }
    }
    return l2l::util::kExitOk;
  }

 private:
  void execute(const std::string& cmd, std::ostream& out) {
    const auto tok = l2l::util::split(cmd);
    if (tok[0] == "var") {
      for (std::size_t k = 1; k < tok.size(); ++k) {
        if (vars_.count(tok[k])) throw std::runtime_error("duplicate var " + tok[k]);
        vars_[tok[k]] = mgr_.new_var();
        order_.push_back(tok[k]);
      }
      return;
    }
    if (tok.size() >= 3 && tok[1] == "=") {
      std::string expr;
      for (std::size_t k = 2; k < tok.size(); ++k) expr += tok[k] + " ";
      fns_.insert_or_assign(tok[0], parse_expr(expr));
      return;
    }
    if (tok[0] == "print") {
      const Bdd f = lookup(tok.at(1));
      if (mgr_.num_vars() > 12) throw std::runtime_error("too many vars to print");
      out << "minterms of " << tok[1] << ":";
      std::vector<bool> a(static_cast<std::size_t>(mgr_.num_vars()));
      for (std::uint64_t m = 0; m < (1ull << mgr_.num_vars()); ++m) {
        for (int v = 0; v < mgr_.num_vars(); ++v) a[static_cast<std::size_t>(v)] = (m >> v) & 1;
        if (f.eval(a)) out << " " << m;
      }
      out << "\n";
      return;
    }
    if (tok[0] == "satcount") {
      out << tok.at(1) << " has " << lookup(tok[1]).sat_count()
          << " satisfying assignments\n";
      return;
    }
    if (tok[0] == "onesat") {
      const auto s = lookup(tok.at(1)).one_sat();
      if (!s) {
        out << tok[1] << " UNSAT\n";
        return;
      }
      out << tok[1] << " SAT:";
      for (std::size_t v = 0; v < s->size(); ++v) {
        if ((*s)[v] < 0) continue;
        out << " " << order_[v] << "=" << static_cast<int>((*s)[v]);
      }
      out << "\n";
      return;
    }
    if (tok[0] == "equal") {
      out << tok.at(1) << " and " << tok.at(2) << " are "
          << (lookup(tok[1]) == lookup(tok[2]) ? "EQUAL" : "NOT EQUAL") << "\n";
      return;
    }
    if (tok[0] == "size") {
      out << tok.at(1) << " has " << lookup(tok[1]).size() << " BDD nodes\n";
      return;
    }
    if (tok[0] == "support") {
      out << "support(" << tok.at(1) << "):";
      for (const int v : lookup(tok[1]).support())
        out << " " << order_[static_cast<std::size_t>(v)];
      out << "\n";
      return;
    }
    if (tok[0] == "cofactor") {
      fns_.insert_or_assign(
          "it", lookup(tok.at(1)).cofactor(var_index(tok.at(2)), tok.at(3) == "1"));
      out << "it = cofactor\n";
      return;
    }
    if (tok[0] == "exists" || tok[0] == "forall") {
      const Bdd f = lookup(tok.at(1));
      const int v = var_index(tok.at(2));
      fns_.insert_or_assign("it",
                            tok[0] == "exists" ? f.exists(v) : f.forall(v));
      out << "it = " << tok[0] << "\n";
      return;
    }
    if (tok[0] == "dot") {
      out << lookup(tok.at(1)).to_dot(tok[1]);
      return;
    }
    throw std::runtime_error("unknown command " + tok[0]);
  }

  int var_index(const std::string& name) const {
    const auto it = vars_.find(name);
    if (it == vars_.end()) throw std::runtime_error("unknown var " + name);
    return it->second;
  }

  Bdd lookup(const std::string& name) {
    if (const auto it = fns_.find(name); it != fns_.end()) return it->second;
    if (const auto it = vars_.find(name); it != vars_.end())
      return mgr_.var(it->second);
    throw std::runtime_error("unknown function " + name);
  }

  // Recursive descent over:  or := xor ('|' xor)* ; xor := and ('^' and)* ;
  // and := unary ('&' unary)* ; unary := '!' unary | atom.
  Bdd parse_expr(const std::string& text) {
    pos_ = 0;
    text_ = text;
    Bdd r = parse_or();
    skip_ws();
    if (pos_ != text_.size()) throw std::runtime_error("trailing junk in expr");
    return r;
  }
  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }
  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  Bdd parse_or() {
    Bdd r = parse_xor();
    while (eat('|')) r = r | parse_xor();
    return r;
  }
  Bdd parse_xor() {
    Bdd r = parse_and();
    while (eat('^')) r = r ^ parse_and();
    return r;
  }
  Bdd parse_and() {
    Bdd r = parse_unary();
    while (eat('&')) r = r & parse_unary();
    return r;
  }
  Bdd parse_unary() {
    if (eat('!')) return !parse_unary();
    if (eat('(')) {
      Bdd r = parse_or();
      if (!eat(')')) throw std::runtime_error("missing ')'");
      return r;
    }
    skip_ws();
    if (pos_ < text_.size() && (text_[pos_] == '0' || text_[pos_] == '1')) {
      const bool one = text_[pos_] == '1';
      ++pos_;
      return one ? mgr_.one() : mgr_.zero();
    }
    std::string name;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '_'))
      name += text_[pos_++];
    if (name.empty()) throw std::runtime_error("expected identifier");
    return lookup(name);
  }

  Manager mgr_{0};
  std::map<std::string, int> vars_;
  std::vector<std::string> order_;
  std::map<std::string, Bdd> fns_;
  std::string text_;
  std::size_t pos_ = 0;
};

}  // namespace

int main(int argc, char** argv) try {
  l2l::obs::ExportOnExit obs_export;
  Calculator calc;
  l2l::util::Budget budget;
  bool have_budget = false;
  bool lint = false;
  std::string path;
  for (int k = 1; k < argc; ++k) {
    const std::string arg = argv[k];
    if (arg == "--lint") {
      lint = true;
    } else if (arg == "--node-limit" || arg == "--time-limit-ms") {
      if (k + 1 >= argc) {
        std::cerr << "error: " << arg << " needs a value\n";
        return l2l::util::kExitUsage;
      }
      const auto v = l2l::util::parse_int64(argv[++k]);
      if (!v || *v < 0) {
        std::cerr << "error: bad " << arg << " value\n";
        return l2l::util::kExitUsage;
      }
      if (arg == "--node-limit")
        budget.set_step_limit(*v);
      else
        budget.set_deadline_ms(*v);
      have_budget = true;
    } else if (arg == "--metrics" || arg == "--trace") {
      if (k + 1 >= argc) {
        std::cerr << "error: " << arg << " needs a value\n";
        return l2l::util::kExitUsage;
      }
      (arg == "--metrics" ? obs_export.metrics_path
                          : obs_export.trace_path) = argv[++k];
    } else {
      path = arg;
    }
  }
  if (have_budget) calc.set_budget(&budget);

  // --lint wants the whole script up front, so buffer the input; the
  // calculator then replays the same bytes.
  std::string text;
  {
    std::ostringstream ss;
    if (!path.empty()) {
      std::ifstream in(path);
      if (!in) {
        std::cerr << "cannot open " << path << "\n";
        return l2l::util::kExitUsage;
      }
      ss << in.rdbuf();
    } else {
      ss << std::cin.rdbuf();
    }
    text = ss.str();
  }
  if (lint) {
    const auto findings = l2l::lint::lint_kbdd_script(text);
    bool fatal = false;
    for (const auto& f : findings) {
      std::cout << "lint: " << f.to_string() << "\n";
      fatal = fatal || f.severity == l2l::util::Severity::kError;
    }
    if (fatal) {
      std::cerr << "error: "
                << l2l::util::Status::parse_error("lint found errors")
                       .to_string()
                << "\n";
      return l2l::util::kExitParse;
    }
  }
  std::istringstream in(text);
  return calc.run(in, std::cout);
} catch (const std::exception& e) {
  std::cerr << "error: " << l2l::util::Status::internal(e.what()).to_string()
            << "\n";
  return l2l::util::kExitInternal;
} catch (...) {
  std::cerr << "error: internal-error: unknown\n";
  return l2l::util::kExitInternal;
}
