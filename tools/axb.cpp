// axb: the MOOC's "simple custom solver for linear systems" (Fig. 4),
// deployed so students could experiment with quadratic-placement
// formulations. Text format:
//
//   n
//   a11 a12 ... a1n
//   ...
//   an1 ... ann
//   b1 ... bn
//
// Solves A x = b with Gaussian elimination (partial pivoting); with
// --cg uses conjugate gradient (requires symmetric positive definite A).

#include <fstream>
#include <iostream>
#include <sstream>

#include "linalg/cg.hpp"
#include "linalg/dense.hpp"
#include "linalg/sparse.hpp"

int main(int argc, char** argv) {
  bool use_cg = false;
  std::string path;
  for (int k = 1; k < argc; ++k) {
    const std::string arg = argv[k];
    if (arg == "--cg")
      use_cg = true;
    else
      path = arg;
  }

  std::ifstream file;
  std::istream* in = &std::cin;
  if (!path.empty()) {
    file.open(path);
    if (!file) {
      std::cerr << "cannot open " << path << "\n";
      return 2;
    }
    in = &file;
  }

  int n = 0;
  if (!(*in >> n) || n <= 0) {
    std::cerr << "error: bad dimension\n";
    return 2;
  }
  l2l::linalg::DenseMatrix a(n, n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      if (!(*in >> a.at(i, j))) {
        std::cerr << "error: matrix entries missing\n";
        return 2;
      }
  std::vector<double> b(static_cast<std::size_t>(n));
  for (auto& v : b)
    if (!(*in >> v)) {
      std::cerr << "error: rhs entries missing\n";
      return 2;
    }

  if (use_cg) {
    l2l::linalg::SparseMatrix s(n);
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j)
        if (a.at(i, j) != 0.0) s.add(i, j, a.at(i, j));
    s.compress();
    if (!s.is_symmetric(1e-9)) {
      std::cerr << "error: --cg requires a symmetric matrix\n";
      return 2;
    }
    const auto res = l2l::linalg::conjugate_gradient(s, b);
    if (!res.converged) {
      std::cerr << "error: CG did not converge (residual " << res.residual
                << ")\n";
      return 1;
    }
    std::cout << "x =";
    for (const double v : res.x) std::cout << " " << v;
    std::cout << "\n# cg iterations " << res.iterations << "\n";
    return 0;
  }

  const auto x = l2l::linalg::solve_gauss(a, b);
  if (!x) {
    std::cerr << "error: singular matrix\n";
    return 1;
  }
  std::cout << "x =";
  for (const double v : *x) std::cout << " " << v;
  std::cout << "\n";
  return 0;
}
