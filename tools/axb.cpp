// axb: the MOOC's "simple custom solver for linear systems" (Fig. 4),
// deployed so students could experiment with quadratic-placement
// formulations. Text format:
//
//   n
//   a11 a12 ... a1n
//   ...
//   an1 ... ann
//   b1 ... bn
//
// Solves A x = b with Gaussian elimination (partial pivoting); with
// --cg uses conjugate gradient (requires symmetric positive definite A).
// The solve goes through api::solve_axb, so identical systems replay
// from the result cache -- including failure outcomes like "singular
// matrix", which carry the same stderr text and exit code either way.
// --lint runs the L2L-Axxx rule pack first (shape + symmetry pre-check);
// findings print as '# lint:' lines on stderr, lint errors exit 3.
// Shared pack: --metrics/--trace/--cache/--no-cache/--cache-dir.
//
// Exit codes follow the shared convention (util/status.hpp): 0 ok,
// 1 solve failure, 2 usage/IO, 3 malformed input, 4 budget exceeded,
// 5 internal error.

#include <iostream>
#include <string>

#include "api/axb.hpp"
#include "common_cli.hpp"
#include "lint/lint.hpp"
#include "obs/trace.hpp"
#include "util/arg_parser.hpp"
#include "util/status.hpp"

namespace {

int fail(const l2l::util::Status& status) {
  std::cerr << "error: " << status.to_string() << "\n";
  return l2l::util::exit_code_for(status);
}

}  // namespace

int main(int argc, char** argv) try {
  l2l::obs::ExportOnExit obs_export;
  l2l::api::AxbRequest req;
  l2l::tools::CommonFlags common;

  l2l::util::ArgParser parser;
  l2l::tools::add_common_flags(parser, common, obs_export);
  parser.flag("--cg", &req.use_cg, "conjugate gradient (needs symmetric A)");
  l2l::tools::add_request_flags(parser, req);
  if (const auto st = parser.parse(argc, argv); !st.ok()) return fail(st);
  l2l::tools::apply_cache_flags(common);

  if (!l2l::tools::read_input_text(parser, req.input))
    return l2l::util::kExitUsage;

  if (common.lint) {
    const auto findings = l2l::lint::lint_axb(req.input);
    bool fatal = false;
    for (const auto& f : findings) {
      std::cerr << "# lint: " << f.to_string() << "\n";
      fatal = fatal || f.severity == l2l::util::Severity::kError;
    }
    if (fatal)
      return fail(l2l::util::Status::parse_error("lint found errors"));
  }

  const auto res = l2l::api::solve_axb(req);
  std::cout << res.output;
  std::cerr << res.error_output;
  return res.exit_code;
} catch (const std::exception& e) {
  std::cerr << "error: " << l2l::util::Status::internal(e.what()).to_string()
            << "\n";
  return l2l::util::kExitInternal;
} catch (...) {
  std::cerr << "error: internal-error: unknown\n";
  return l2l::util::kExitInternal;
}
