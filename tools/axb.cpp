// axb: the MOOC's "simple custom solver for linear systems" (Fig. 4),
// deployed so students could experiment with quadratic-placement
// formulations. Text format:
//
//   n
//   a11 a12 ... a1n
//   ...
//   an1 ... ann
//   b1 ... bn
//
// Solves A x = b with Gaussian elimination (partial pivoting); with
// --cg uses conjugate gradient (requires symmetric positive definite A).
// --lint runs the L2L-Axxx rule pack first (shape + symmetry pre-check);
// findings print as '# lint:' lines on stderr, lint errors exit 3.
//
// Exit codes follow the shared convention (util/status.hpp): 0 ok,
// 1 solve failure, 2 usage/IO, 3 malformed input, 4 budget exceeded,
// 5 internal error.

#include <fstream>
#include <iostream>
#include <sstream>

#include "linalg/cg.hpp"
#include "linalg/dense.hpp"
#include "linalg/sparse.hpp"
#include "lint/lint.hpp"
#include "obs/trace.hpp"
#include "util/budget.hpp"
#include "util/status.hpp"
#include "util/strings.hpp"

namespace {

int fail(const l2l::util::Status& status) {
  std::cerr << "error: " << status.to_string() << "\n";
  return l2l::util::exit_code_for(status);
}

}  // namespace

int main(int argc, char** argv) try {
  l2l::obs::ExportOnExit obs_export;
  bool use_cg = false;
  bool lint = false;
  std::int64_t time_limit_ms = -1;
  std::string path;
  for (int k = 1; k < argc; ++k) {
    const std::string arg = argv[k];
    if (arg == "--cg") {
      use_cg = true;
    } else if (arg == "--lint") {
      lint = true;
    } else if (arg == "--time-limit-ms") {
      if (k + 1 >= argc)
        return fail(l2l::util::Status::invalid("--time-limit-ms needs a value"));
      const auto v = l2l::util::parse_int64(argv[++k]);
      if (!v || *v < 0)
        return fail(l2l::util::Status::invalid("bad --time-limit-ms value"));
      time_limit_ms = *v;
    } else if (arg == "--metrics" || arg == "--trace") {
      if (k + 1 >= argc)
        return fail(l2l::util::Status::invalid(arg + " needs a value"));
      (arg == "--metrics" ? obs_export.metrics_path
                          : obs_export.trace_path) = argv[++k];
    } else {
      path = arg;
    }
  }

  std::ifstream file;
  std::istream* in = &std::cin;
  if (!path.empty()) {
    file.open(path);
    if (!file) {
      std::cerr << "cannot open " << path << "\n";
      return l2l::util::kExitUsage;
    }
    in = &file;
  }

  std::istringstream buffered;
  if (lint) {
    std::ostringstream ss;
    ss << in->rdbuf();
    const auto findings = l2l::lint::lint_axb(ss.str());
    bool fatal = false;
    for (const auto& f : findings) {
      std::cerr << "# lint: " << f.to_string() << "\n";
      fatal = fatal || f.severity == l2l::util::Severity::kError;
    }
    if (fatal)
      return fail(l2l::util::Status::parse_error("lint found errors"));
    buffered.str(ss.str());
    in = &buffered;
  }

  // The dimension sizes an n*n dense allocation, so it is validated
  // before any memory is touched: a submission declaring n = 10^9 gets a
  // diagnostic, not an OOM abort.
  constexpr int kMaxDim = 4096;
  int n = 0;
  if (!(*in >> n))
    return fail(l2l::util::Status::parse_error("bad or missing dimension"));
  if (n <= 0 || n > kMaxDim)
    return fail(l2l::util::Status::invalid(
        l2l::util::format("dimension %d out of range [1, %d]", n, kMaxDim)));
  l2l::linalg::DenseMatrix a(n, n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      if (!(*in >> a.at(i, j)))
        return fail(l2l::util::Status::parse_error(l2l::util::format(
            "matrix entry (%d, %d) missing or not a number", i, j)));
  std::vector<double> b(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < b.size(); ++i)
    if (!(*in >> b[i]))
      return fail(l2l::util::Status::parse_error(l2l::util::format(
          "rhs entry %d missing or not a number", static_cast<int>(i))));

  if (use_cg) {
    l2l::linalg::SparseMatrix s(n);
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j)
        if (a.at(i, j) != 0.0) s.add(i, j, a.at(i, j));
    s.compress();
    if (!s.is_symmetric(1e-9))
      return fail(
          l2l::util::Status::invalid("--cg requires a symmetric matrix"));
    l2l::util::Budget budget;
    l2l::linalg::CgOptions cgopt;
    if (time_limit_ms >= 0) {
      budget.set_deadline_ms(time_limit_ms);
      cgopt.budget = &budget;
    }
    const auto res = l2l::linalg::conjugate_gradient(s, b, cgopt);
    if (!res.converged) {
      if (time_limit_ms >= 0 && budget.exhausted()) return fail(budget.status());
      std::cerr << "error: CG did not converge (residual " << res.residual
                << ")\n";
      return l2l::util::kExitFail;
    }
    std::cout << "x =";
    for (const double v : res.x) std::cout << " " << v;
    std::cout << "\n# cg iterations " << res.iterations << "\n";
    return l2l::util::kExitOk;
  }

  const auto x = l2l::linalg::solve_gauss(a, b);
  if (!x) {
    std::cerr << "error: singular matrix\n";
    return l2l::util::kExitFail;
  }
  std::cout << "x =";
  for (const double v : *x) std::cout << " " << v;
  std::cout << "\n";
  return l2l::util::kExitOk;
} catch (const std::exception& e) {
  std::cerr << "error: " << l2l::util::Status::internal(e.what()).to_string()
            << "\n";
  return l2l::util::kExitInternal;
} catch (...) {
  std::cerr << "error: internal-error: unknown\n";
  return l2l::util::kExitInternal;
}
