#!/bin/sh
# check_invariants.sh -- grep-level determinism/robustness gates for the
# C++ tree. The repo's output contract (byte-identical reports at any
# L2L_THREADS, hostile inputs never crash) dies quietly when someone
# reaches for the convenient-but-wrong standard library call, so the
# conventions are enforced mechanically:
#
#   1. no std::stoi/stol/stoll/stoul/stoull/stof/stod/stold
#      (throw on garbage AND on overflow, locale-dependent; use
#      util::parse_int / parse_int64 / parse_double)
#   2. no rand()/srand()/random_device
#      (non-reproducible; use a seeded engine or splitmix64 hashing)
#   3. no wall-clock reads (system_clock, gettimeofday, time(NULL))
#      (timestamps in deterministic-export paths break golden files;
#      steady_clock via util::Budget is the sanctioned timer)
#   4. no range-for over unordered containers
#      (iteration order feeds reports/exports nondeterministically; use
#      std::map/std::set or sort first)
#
# False positives go in check_invariants_allowlist.txt next to this
# script: one literal substring per line ('#' comments); any violation
# line containing one of them is waived.
#
# Usage: tools/check_invariants.sh [repo-root]   (exit 0 clean, 1 dirty)

set -u
root="${1:-.}"
cd "$root" || exit 2
allow="tools/check_invariants_allowlist.txt"

# The scanned set: every C++ source/header we ship, tests included --
# a nondeterministic test is as flaky as a nondeterministic engine.
files=$(find src tools bench tests -type f \( -name '*.cpp' -o -name '*.hpp' \) 2>/dev/null | sort)
[ -n "$files" ] || { echo "check_invariants: no sources found under $root"; exit 2; }

tmp="${TMPDIR:-/tmp}/check_invariants.$$"
trap 'rm -f "$tmp" "$tmp.raw"' EXIT
: > "$tmp.raw"

scan() {
  # scan <rule-name> <extended-regex>
  rule="$1"; pattern="$2"
  # shellcheck disable=SC2086
  grep -nE "$pattern" $files /dev/null 2>/dev/null |
    awk -v rule="$rule" -F: '{ line=$0; sub(/^[^:]*:[^:]*:/, "", line);
      # strip // and /* comments and string literals before judging
      gsub(/"([^"\\]|\\.)*"/, "\"\"", line);
      sub(/\/\/.*/, "", line); sub(/\/\*.*/, "", line);
      if (line ~ pat) printf "%s:%s: [%s] %s\n", $1, $2, rule, line }' \
      pat="$pattern" >> "$tmp.raw"
}

scan_in() {
  # scan_in <rule-name> <extended-regex> <dir-prefix-regex> -- like scan,
  # but only for files whose path matches the prefix. Used for per-engine
  # layout invariants that should not constrain the rest of the tree.
  rule="$1"; pattern="$2"; prefix="$3"
  scoped=$(echo "$files" | grep -E "$prefix")
  [ -n "$scoped" ] || return 0
  # shellcheck disable=SC2086
  grep -nE "$pattern" $scoped /dev/null 2>/dev/null |
    awk -v rule="$rule" -F: '{ line=$0; sub(/^[^:]*:[^:]*:/, "", line);
      gsub(/"([^"\\]|\\.)*"/, "\"\"", line);
      sub(/\/\/.*/, "", line); sub(/\/\*.*/, "", line);
      if (line ~ pat) printf "%s:%s: [%s] %s\n", $1, $2, rule, line }' \
      pat="$pattern" >> "$tmp.raw"
}

scan no-std-stoi   'std::sto(i|l|ll|ul|ull|f|d|ld)[[:space:]]*\('
scan no-libc-rand  '(^|[^_[:alnum:]])s?rand[[:space:]]*\(|std::random_device'
scan no-wall-clock 'system_clock|gettimeofday|[^_[:alnum:]]time[[:space:]]*\([[:space:]]*(NULL|nullptr|0)[[:space:]]*\)'
scan no-unordered-iteration 'for[[:space:]]*\(.*:.*unordered'
# Data-layout invariants for the hot engines (PR 6): clauses live in the
# uint32 arena (sat/types.hpp), never as individually heap-allocated
# objects, and the BDD/SAT lookup structures are the flat open-addressing
# tables from util/flat_map.hpp -- node-per-bucket unordered tables undo
# the cache-locality win the bench trajectory pins down.
scan_in no-heap-clauses    'unique_ptr<[[:space:]]*Clause' '^src/sat/'
scan_in no-unordered-tables 'std::unordered_' '^src/(sat|bdd|esop|sema)/'
# The semantic analyzer (PR 9) feeds byte-identical reports and golden
# metric exports; it gets the full determinism pack scoped explicitly so
# a future relaxation of the global rules cannot silently unpin it.
scan_in sema-no-stoi       'std::sto(i|l|ll|ul|ull|f|d|ld)[[:space:]]*\(' '^src/sema/'
scan_in sema-no-wall-clock 'system_clock|gettimeofday|[^_[:alnum:]]time[[:space:]]*\([[:space:]]*(NULL|nullptr|0)[[:space:]]*\)' '^src/sema/'
# The crash-recovery journal (PR 10) promises byte-identical replay of a
# pre-crash drain: a wall-clock read, a steady_clock timestamp baked into
# a frame, or an unordered-container walk on the write path would make
# the journal disagree with its own replay. Scoped like the sema pack so
# the promise survives any relaxation of the global rules.
scan_in journal-no-clock 'system_clock|steady_clock|gettimeofday|[^_[:alnum:]]time[[:space:]]*\(' '^src/mooc/(journal|shard_map)'
scan_in journal-no-unordered 'std::unordered_' '^src/mooc/(journal|shard_map)'
scan_in journal-no-stoi 'std::sto(i|l|ll|ul|ull|f|d|ld)[[:space:]]*\(' '^src/mooc/(journal|shard_map)'

# Apply the allowlist (literal substrings, comments stripped).
if [ -f "$allow" ]; then
  grep -v '^[[:space:]]*#' "$allow" | grep -v '^[[:space:]]*$' > "$tmp" || true
  if [ -s "$tmp" ]; then
    grep -vF -f "$tmp" "$tmp.raw" > "$tmp.filtered" || true
    mv "$tmp.filtered" "$tmp.raw"
  fi
fi

if [ -s "$tmp.raw" ]; then
  echo "check_invariants: FAIL -- banned constructs found:"
  sort -u "$tmp.raw"
  echo ""
  echo "Fix the call (util/strings.hpp has the sanctioned parsers, and"
  echo "util/budget.hpp the sanctioned timer), or add a literal substring"
  echo "of the line to $allow with a comment explaining why."
  exit 1
fi
echo "check_invariants: OK ($(echo "$files" | wc -l | tr -d ' ') files scanned)"
exit 0
